//! Property-based tests for the simulator's data structures: the prefix
//! arithmetic and the longest-prefix-match trie (validated against a naive
//! linear scan).

use bcd_netsim::{Asn, LpmTrie, Prefix, PrefixMap, PrefixTable};
use proptest::prelude::*;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

fn any_v4() -> impl Strategy<Value = IpAddr> {
    any::<u32>().prop_map(|v| IpAddr::V4(Ipv4Addr::from(v)))
}

fn any_v6() -> impl Strategy<Value = IpAddr> {
    any::<u128>().prop_map(|v| IpAddr::V6(Ipv6Addr::from(v)))
}

fn any_ip() -> impl Strategy<Value = IpAddr> {
    prop_oneof![any_v4(), any_v6()]
}

fn any_prefix() -> impl Strategy<Value = Prefix> {
    prop_oneof![
        (any::<u32>(), 0u8..=32)
            .prop_map(|(v, len)| Prefix::new(IpAddr::V4(Ipv4Addr::from(v)), len)),
        (any::<u128>(), 0u8..=128)
            .prop_map(|(v, len)| Prefix::new(IpAddr::V6(Ipv6Addr::from(v)), len)),
    ]
}

/// Naive reference for longest-prefix match.
fn linear_lpm(entries: &[(Prefix, u32)], ip: IpAddr) -> Option<u32> {
    entries
        .iter()
        .filter(|(p, _)| p.contains(ip))
        .max_by_key(|(p, _)| p.len())
        .map(|(_, v)| *v)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// A prefix contains exactly the addresses its nth() enumerates.
    #[test]
    fn prefix_contains_its_members(p in any_prefix(), idx in any::<u128>()) {
        let size = p.size();
        let i = if size == u128::MAX { idx } else { idx % size };
        if let Some(addr) = p.nth(i) {
            prop_assert!(p.contains(addr));
            prop_assert_eq!(p.index_of(addr), Some(i));
        }
    }

    /// Canonicalization: any address inside a prefix reconstructs the same
    /// prefix at the same length.
    #[test]
    fn prefix_is_canonical(p in any_prefix(), idx in any::<u128>()) {
        let size = p.size();
        let i = if size == u128::MAX { idx } else { idx % size };
        if let Some(addr) = p.nth(i) {
            prop_assert_eq!(Prefix::new(addr, p.len()), p);
        }
    }

    /// covers() agrees with membership of the network and last addresses.
    #[test]
    fn covers_matches_containment(a in any_prefix(), b in any_prefix()) {
        if a.covers(&b) {
            prop_assert!(a.contains(b.network()));
            prop_assert!(a.contains(b.last()));
            prop_assert!(a.len() <= b.len());
        }
    }

    /// The trie's longest-prefix match agrees with a naive linear scan for
    /// any set of insertions. Last-insert-wins on duplicate prefixes.
    #[test]
    fn trie_agrees_with_linear_scan(
        entries in proptest::collection::vec((any_prefix(), any::<u32>()), 0..40),
        probes in proptest::collection::vec(any_ip(), 0..40),
    ) {
        let mut map: PrefixMap<u32> = PrefixMap::new();
        // Deduplicate like the map does: keep the last value per prefix.
        let mut reference: Vec<(Prefix, u32)> = Vec::new();
        for (p, v) in &entries {
            map.insert(*p, *v);
            reference.retain(|(q, _)| q != p);
            reference.push((*p, *v));
        }
        prop_assert_eq!(map.len(), reference.len());
        for ip in probes {
            prop_assert_eq!(map.get(ip), linear_lpm(&reference, ip), "probe {}", ip);
        }
        // Stored prefixes look themselves up (probe their own members).
        for (p, _) in &reference {
            let probe = p.network();
            let got = map.get(probe);
            prop_assert_eq!(got, linear_lpm(&reference, probe));
            prop_assert!(got.is_some());
        }
    }

    /// PrefixTable reverse index is consistent with lookups.
    #[test]
    fn table_reverse_index_consistent(
        entries in proptest::collection::vec((any_prefix(), 1u32..50), 1..30),
    ) {
        let mut t = PrefixTable::new();
        for (p, asn) in &entries {
            t.announce(*p, Asn(*asn));
        }
        for asn in t.asns() {
            for p in t.prefixes_of(asn) {
                // The network address of each announced prefix resolves to
                // a prefix at least as specific.
                let (got_p, _) = t.lookup(p.network()).expect("own prefix must match");
                prop_assert!(got_p.len() >= p.len());
            }
        }
        // Total prefixes in reverse index equals the trie's count.
        let total: usize = t.asns().map(|a| t.prefixes_of(a).len()).sum();
        prop_assert_eq!(total, t.len());
    }

    /// Differential oracle: the compact arena trie answers every lookup
    /// identically to the boxed-node map for any interleaving of announces
    /// (including re-announces, which replace) and probes. This is the
    /// gate for swapping `PrefixTable`'s forward engine.
    #[test]
    fn lpm_trie_agrees_with_prefix_map(
        entries in proptest::collection::vec((any_prefix(), any::<u32>()), 0..60),
        probes in proptest::collection::vec(any_ip(), 0..60),
    ) {
        let mut trie: LpmTrie<u32> = LpmTrie::new();
        let mut map: PrefixMap<u32> = PrefixMap::new();
        for (p, v) in &entries {
            prop_assert_eq!(trie.insert(*p, *v), map.insert(*p, *v), "insert {}", p);
            prop_assert_eq!(trie.len(), map.len());
        }
        prop_assert!(trie.node_count() <= 2 * trie.len() + 2);
        for ip in probes {
            prop_assert_eq!(trie.lookup(ip), map.lookup(ip), "probe {}", ip);
        }
        // Members of every stored prefix resolve identically too (probes
        // above are uniform, so they rarely land inside narrow prefixes).
        for (p, _) in &entries {
            for probe in [p.network(), p.last()] {
                prop_assert_eq!(trie.lookup(probe), map.lookup(probe), "member {}", probe);
            }
        }
    }

    /// The full `PrefixTable` behaves identically over either engine for
    /// random announce sequences: lookups, origins, reverse index, iter.
    #[test]
    fn prefix_table_engines_agree(
        entries in proptest::collection::vec((any_prefix(), 1u32..50), 0..40),
        probes in proptest::collection::vec(any_ip(), 0..40),
    ) {
        let mut trie = PrefixTable::with_trie();
        let mut map = PrefixTable::with_map();
        for (p, asn) in &entries {
            trie.announce(*p, Asn(*asn));
            map.announce(*p, Asn(*asn));
        }
        prop_assert_eq!(trie.len(), map.len());
        for ip in probes {
            prop_assert_eq!(trie.lookup(ip), map.lookup(ip), "probe {}", ip);
        }
        prop_assert_eq!(
            trie.iter().collect::<Vec<_>>(),
            map.iter().collect::<Vec<_>>()
        );
        prop_assert_eq!(trie.asns().collect::<Vec<_>>(), map.asns().collect::<Vec<_>>());
    }

    /// Subprefix enumeration covers the parent exactly.
    #[test]
    fn subprefixes_partition(p in any_prefix(), extra in 0u8..6) {
        let sublen = p.len().saturating_add(extra).min(p.width());
        let subs: Vec<Prefix> = p.subprefixes(sublen).take(128).collect();
        for (i, s) in subs.iter().enumerate() {
            prop_assert!(p.covers(s));
            prop_assert_eq!(s.len(), sublen);
            if i > 0 {
                prop_assert!(subs[i - 1].network() < s.network());
            }
        }
    }
}
