//! Property tests for the timing-wheel scheduler, plus the tie-break
//! regression suite.
//!
//! The wheel ([`bcd_netsim::WheelSched`]) is validated two ways:
//!
//! * **differentially** — arbitrary interleavings of pushes (time deltas
//!   spanning same-tick to beyond the wheel's 19.5 h horizon) and pops must
//!   produce the exact `(time, seq)` stream the reference
//!   [`bcd_netsim::HeapSched`] produces, with pushed = popped conservation;
//! * **axiomatically** — same-tick bursts fire in seq (enqueue) order,
//!   `clear` + reinsert behaves like a fresh wheel, and the pop stream is
//!   sorted even when every hierarchy level and the overflow calendar are
//!   populated at once.
//!
//! The engine-level tests at the bottom are the adversarial tie-break
//! regression: a same-instant timer flood and a same-instant packet flood,
//! run under both schedulers, must observe identical fire order and
//! identical counters — and the packet-conservation identity
//! `sent + duplicated = delivered + drops + pending` must hold under
//! link faults on either scheduler.

use bcd_netsim::{
    Asn, BorderPolicy, EngineSched, HeapSched, HostConfig, LinkProfile, Network, NetworkConfig,
    Node, NodeCtx, Packet, Prefix, QueuedEvent, SchedKind, SimDuration, SimTime, StackPolicy,
    WheelSched,
};
use proptest::prelude::*;

fn timer(at_ns: u64, seq: u64) -> QueuedEvent {
    QueuedEvent {
        at: SimTime::from_nanos(at_ns),
        seq,
        kind: bcd_netsim::sched::EventKind::Timer {
            host: 0,
            token: seq,
        },
    }
}

fn drain(q: &mut impl EngineSched) -> Vec<(u64, u64)> {
    let mut out = Vec::new();
    while let Some(ev) = q.pop() {
        out.push((ev.at.as_nanos(), ev.seq));
    }
    out
}

/// One step of a differential run: a push with a delta drawn from one of
/// the wheel's structurally distinct regimes, optionally followed by a pop.
#[derive(Debug, Clone, Copy)]
struct Op {
    /// 0 same instant · 1 same bucket · 2 cross-bucket · 3 cross-slot ·
    /// 4 level 1 · 5 level 2 · 6 overflow calendar
    regime: u8,
    jitter: u64,
    pop: bool,
}

fn op() -> impl Strategy<Value = Op> {
    (0u8..7, any::<u64>(), any::<bool>()).prop_map(|(regime, jitter, pop)| Op {
        regime,
        jitter,
        pop,
    })
}

fn delta(o: Op) -> u64 {
    match o.regime {
        0 => 0,
        1 => o.jitter % 1_000,                   // within a 65 µs bucket
        2 => o.jitter % 100_000,                 // a few buckets out
        3 => 1_000_000 + o.jitter % 50_000_000,  // across level-0 slots
        4 => 60_000_000_000,                     // level 1 (~68 s span)
        5 => 7_200_000_000_000,                  // level 2 (+2 h timers)
        _ => (1 << 46) + (o.jitter % (1 << 46)), // beyond level 2
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The wheel and the heap produce the same pop stream for any
    /// interleaving of pushes and pops, and conserve events exactly.
    #[test]
    fn wheel_is_heap_equivalent(ops in proptest::collection::vec(op(), 1..400)) {
        let mut w = WheelSched::new();
        let mut h = HeapSched::new();
        let mut now = 0u64;
        let mut pushed = 0u64;
        let mut popped = 0u64;
        for (seq, o) in ops.iter().enumerate() {
            let at = now + delta(*o);
            w.push(timer(at, seq as u64));
            h.push(timer(at, seq as u64));
            pushed += 1;
            if o.pop {
                let a = w.pop().map(|e| (e.at, e.seq));
                let b = h.pop().map(|e| (e.at, e.seq));
                prop_assert_eq!(a, b);
                prop_assert_eq!(w.peek_time(), h.peek_time());
                if let Some((t, _)) = a {
                    popped += 1;
                    // Like the engine: time never runs backwards.
                    now = t.as_nanos();
                }
            }
            prop_assert_eq!(w.len(), h.len());
        }
        let rest_w = drain(&mut w);
        let rest_h = drain(&mut h);
        prop_assert_eq!(&rest_w, &rest_h);
        prop_assert_eq!(pushed, popped + rest_w.len() as u64);
        prop_assert!(w.is_empty());
    }

    /// A burst of events at one instant pops back in exact seq (enqueue)
    /// order, wherever that instant lands in the hierarchy.
    #[test]
    fn same_tick_burst_pops_in_seq_order(
        n in 1usize..300,
        base in prop_oneof![
            Just(0u64),
            0u64..100_000_000,
            Just(7_200_000_000_000),
            (1u64 << 46)..(1u64 << 48),
        ],
    ) {
        let mut w = WheelSched::new();
        for seq in 0..n as u64 {
            w.push(timer(base, seq));
        }
        let got = drain(&mut w);
        let want: Vec<(u64, u64)> = (0..n as u64).map(|s| (base, s)).collect();
        prop_assert_eq!(got, want);
    }

    /// The pop stream is globally sorted by (time, seq) even when pushes
    /// land on every level and the overflow calendar simultaneously.
    #[test]
    fn pop_stream_is_sorted(ops in proptest::collection::vec(op(), 1..400)) {
        let mut w = WheelSched::new();
        for (seq, o) in ops.iter().enumerate() {
            w.push(timer(delta(*o), seq as u64));
        }
        let got = drain(&mut w);
        prop_assert_eq!(got.len(), ops.len());
        for pair in got.windows(2) {
            prop_assert!(pair[0] < pair[1], "out of order: {:?}", pair);
        }
    }

    /// clear() is a true cancel-all: the wheel afterwards behaves like a
    /// fresh one for any reinserted schedule (no stale cursor, bucket, or
    /// batch state survives).
    #[test]
    fn clear_then_reinsert_is_like_fresh(
        first in proptest::collection::vec(op(), 1..120),
        consume in 0usize..120,
        second in proptest::collection::vec(op(), 1..120),
    ) {
        let mut w = WheelSched::new();
        for (seq, o) in first.iter().enumerate() {
            w.push(timer(delta(*o), seq as u64));
        }
        for _ in 0..consume.min(first.len()) {
            w.pop();
        }
        w.clear();
        prop_assert!(w.is_empty());
        prop_assert_eq!(w.pending_delivers(), 0);

        let mut fresh = WheelSched::new();
        for (seq, o) in second.iter().enumerate() {
            w.push(timer(delta(*o), seq as u64));
            fresh.push(timer(delta(*o), seq as u64));
        }
        prop_assert_eq!(drain(&mut w), drain(&mut fresh));
    }
}

// ---------------------------------------------------------------------------
// Engine-level tie-break regression: adversarial same-instant floods
// ---------------------------------------------------------------------------

/// Sets every timer for the same deadline in `on_start`, records fire order.
struct TimerFlood {
    tokens: Vec<u64>,
    fired: Vec<u64>,
}

impl Node for TimerFlood {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for &t in &self.tokens {
            ctx.set_timer(SimDuration::from_millis(5), t);
        }
    }
    fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, token: u64) {
        self.fired.push(token);
    }
}

/// Fires one spoof-free packet per destination port at the same instant.
struct PacketFlood {
    src: std::net::IpAddr,
    dst: std::net::IpAddr,
    count: u16,
}

impl Node for PacketFlood {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, _pkt: Packet) {}
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        for i in 0..self.count {
            ctx.send(Packet::udp(self.src, self.dst, 1000 + i, 53, vec![]));
        }
    }
}

/// Counts deliveries and remembers the source-port arrival order.
#[derive(Default)]
struct PortRecorder {
    ports: Vec<u16>,
}

impl Node for PortRecorder {
    fn on_packet(&mut self, _ctx: &mut NodeCtx<'_>, pkt: Packet) {
        if let bcd_netsim::Transport::Udp(u) = &pkt.transport {
            self.ports.push(u.src_port);
        }
    }
}

fn flood_net(sched: SchedKind, link: LinkProfile) -> (Network, usize, usize) {
    let mut net = Network::new(NetworkConfig {
        sched,
        core_link: link,
        ..Default::default()
    });
    net.add_simple_as(Asn(100), BorderPolicy::strict());
    net.add_simple_as(Asn(200), BorderPolicy::strict());
    net.announce("192.0.2.0/24".parse::<Prefix>().unwrap(), Asn(100));
    net.announce("198.51.100.0/24".parse::<Prefix>().unwrap(), Asn(200));
    let flooder = net.add_host(
        HostConfig {
            addrs: vec!["192.0.2.1".parse().unwrap()],
            asn: Asn(100),
            stack: StackPolicy::permissive(),
        },
        Box::new(PacketFlood {
            src: "192.0.2.1".parse().unwrap(),
            dst: "198.51.100.10".parse().unwrap(),
            count: 500,
        }),
    );
    let sink = net.add_host(
        HostConfig {
            addrs: vec!["198.51.100.10".parse().unwrap()],
            asn: Asn(200),
            stack: StackPolicy::permissive(),
        },
        Box::new(PortRecorder::default()),
    );
    (net, flooder, sink)
}

/// 2000 timers armed for the *same instant*: they must fire in enqueue
/// order (the `(time, seq)` tie-break), identically on both schedulers.
/// This is the adversarial case a scheduler with a payload-sensitive or
/// unstable tie-break gets wrong.
#[test]
fn same_instant_timer_flood_fires_in_enqueue_order() {
    // Token values deliberately descending and colliding, so any ordering
    // by token, hash, or bucket insertion artifact diverges from seq order.
    let tokens: Vec<u64> = (0..2000u64).map(|i| 5000 - (i % 1000)).collect();
    let mut orders = Vec::new();
    for sched in [SchedKind::Heap, SchedKind::Wheel] {
        let mut net = Network::new(NetworkConfig {
            sched,
            ..Default::default()
        });
        net.add_simple_as(Asn(100), BorderPolicy::strict());
        net.announce("192.0.2.0/24".parse::<Prefix>().unwrap(), Asn(100));
        let host = net.add_host(
            HostConfig {
                addrs: vec!["192.0.2.1".parse().unwrap()],
                asn: Asn(100),
                stack: StackPolicy::permissive(),
            },
            Box::new(TimerFlood {
                tokens: tokens.clone(),
                fired: Vec::new(),
            }),
        );
        net.run();
        let fired = net.node::<TimerFlood>(host).unwrap().fired.clone();
        assert_eq!(fired, tokens, "{sched:?}: flood fired out of enqueue order");
        orders.push(fired);
    }
    assert_eq!(orders[0], orders[1]);
}

/// 500 packets sent at the same instant over a zero-jitter link all arrive
/// in the same tick; arrival order and counters must match across
/// schedulers byte for byte.
#[test]
fn same_instant_packet_flood_is_scheduler_invariant() {
    let mut runs = Vec::new();
    for sched in [SchedKind::Heap, SchedKind::Wheel] {
        let (mut net, _, sink) = flood_net(sched, LinkProfile::ideal());
        net.run();
        let ports = net.node::<PortRecorder>(sink).unwrap().ports.clone();
        assert_eq!(ports.len(), 500, "{sched:?}: lost deliveries");
        assert_eq!(
            ports,
            (1000u16..1500).collect::<Vec<_>>(),
            "{sched:?}: same-tick deliveries out of send order"
        );
        runs.push((ports, format!("{:?}", net.counters)));
    }
    assert_eq!(runs[0], runs[1]);
}

/// Packet conservation under link faults, on both schedulers:
/// sent + duplicated = delivered + drops + pending.
#[test]
fn conservation_holds_under_faults_on_both_schedulers() {
    let mut summaries = Vec::new();
    for sched in [SchedKind::Heap, SchedKind::Wheel] {
        let link = LinkProfile {
            loss: 0.2,
            duplicate: 0.1,
            ..LinkProfile::internet()
        };
        let (mut net, _, _) = flood_net(sched, link);
        net.run();
        let c = &net.counters;
        assert_eq!(
            c.sent + c.duplicated,
            c.delivered + c.total_drops() + net.pending_deliveries(),
            "{sched:?}: conservation violated: {c}"
        );
        assert!(c.total_drops() > 0, "{sched:?}: fault injection inert");
        summaries.push(format!("{c}"));
    }
    // Same seed, same world: the fault pattern itself must be identical.
    assert_eq!(summaries[0], summaries[1]);
}
