//! Property test for the trace ring-buffer merge: absorbing one capture
//! into another must be indistinguishable from a single trace that
//! recorded the union sequentially — same entries, same order, same
//! eviction count. This is the contract the sharded survey's trace merge
//! relies on (each shard captures independently, the merged artifact must
//! look like one engine's capture).

use bcd_netsim::{Packet, SimTime, Trace, TracePoint};
use proptest::prelude::*;
use std::net::IpAddr;

/// A packet tagged with a distinguishable source port, so entry identity
/// (not just timestamps) survives the merge comparison.
fn tagged_pkt(tag: u16) -> Packet {
    let a: IpAddr = "192.0.2.1".parse().unwrap();
    let b: IpAddr = "198.51.100.9".parse().unwrap();
    Packet::udp(a, b, tag, 53, vec![0u8; 12])
}

fn entry_keys(t: &Trace) -> Vec<(u64, u16)> {
    t.iter()
        .map(|e| (e.time.as_nanos(), e.packet.transport.src_port()))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Two captures with disjoint timestamps, neither individually
    /// overflowed: `a.absorb(b)` must equal one trace of the merged
    /// capacity recording the union in timestamp order.
    #[test]
    fn absorb_equals_sequential_record(
        raw in proptest::collection::vec(
            (0u64..1_000_000_000u64, proptest::arbitrary::any::<bool>()),
            0..40usize,
        ),
        slack_a in 0usize..4,
        slack_b in 0usize..4,
    ) {
        // Sort and dedup by timestamp so the two captures are disjoint and
        // the merged order is unambiguous; tag every entry with its global
        // index so entry identity (not just time) is checked.
        let mut raw = raw;
        raw.sort_by_key(|&(t, _)| t);
        raw.dedup_by_key(|&mut (t, _)| t);
        let times: Vec<u64> = raw.iter().map(|&(t, _)| t).collect();

        // Partition the (sorted, distinct) timestamps into two disjoint
        // captures.
        let mut a_entries: Vec<(u64, u16)> = Vec::new();
        let mut b_entries: Vec<(u64, u16)> = Vec::new();
        for (i, &(t, to_a)) in raw.iter().enumerate() {
            if to_a {
                a_entries.push((t, i as u16));
            } else {
                b_entries.push((t, i as u16));
            }
        }
        // Capacities at least as large as each input, so neither input
        // ring evicts on its own (the property absorb must then preserve
        // exactly); the union may still exceed the merged capacity.
        let cap_a = a_entries.len() + slack_a;
        let cap_b = b_entries.len() + slack_b;

        let mut a = Trace::with_capacity(cap_a);
        for &(t, tag) in &a_entries {
            a.record(SimTime::from_nanos(t), TracePoint::Sent, &tagged_pkt(tag));
        }
        let mut b = Trace::with_capacity(cap_b);
        for &(t, tag) in &b_entries {
            b.record(SimTime::from_nanos(t), TracePoint::Sent, &tagged_pkt(tag));
        }
        prop_assert_eq!(a.evicted, 0u64);
        prop_assert_eq!(b.evicted, 0u64);

        a.absorb(b);

        // The reference: one trace of the merged capacity, recording the
        // union sequentially in timestamp order.
        let mut reference = Trace::with_capacity(cap_a.max(cap_b));
        for (i, &t) in times.iter().enumerate() {
            reference.record(
                SimTime::from_nanos(t),
                TracePoint::Sent,
                &tagged_pkt(i as u16),
            );
        }

        prop_assert_eq!(a.capacity(), reference.capacity());
        prop_assert_eq!(a.len(), reference.len());
        prop_assert_eq!(a.evicted, reference.evicted);
        prop_assert_eq!(entry_keys(&a), entry_keys(&reference));
    }
}
