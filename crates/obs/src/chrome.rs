//! Chrome trace-event export for the causal flight recorder.
//!
//! Emits the [Trace Event Format] JSON that `chrome://tracing` and Perfetto
//! load directly. Two process rows:
//!
//! * **pid 1 "sim"** — query lifecycles on the *virtual* clock: one thread
//!   row per retained trace, a complete (`X`) event spanning the trace's
//!   first to last span, and one instant (`i`) event per span carrying the
//!   step index and detail text.
//! * **pid 2 "wall"** — pipeline phases on the *wall* clock, laid out
//!   sequentially in completion order (shard phases overlap in reality;
//!   the layout shows cost, not concurrency).
//!
//! The encoder is hand-rolled like [`crate::export`] (the workspace
//! vendors no JSON crate): fixed key order, RFC 8259 escaping, integer
//! microsecond timestamps — so the output is deterministic for a
//! deterministic recorder, and the trace-invariance suite can byte-compare
//! it across shard counts.
//!
//! [Trace Event Format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use crate::RunProfile;
use bcd_netsim::FlightRecorder;
use std::fmt::Write;

fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn push_event(
    out: &mut String,
    first: &mut bool,
    name: &str,
    ph: char,
    ts_us: u64,
    dur_us: Option<u64>,
    pid: u32,
    tid: u64,
    args: &[(&str, &str)],
) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str("{\"name\":\"");
    escape(name, out);
    let _ = write!(out, "\",\"ph\":\"{ph}\",\"ts\":{ts_us}");
    if let Some(d) = dur_us {
        let _ = write!(out, ",\"dur\":{d}");
    }
    let _ = write!(out, ",\"pid\":{pid},\"tid\":{tid}");
    if ph == 'i' {
        // Thread-scoped instant: renders as a tick on its own row.
        out.push_str(",\"s\":\"t\"");
    }
    if !args.is_empty() {
        out.push_str(",\"args\":{");
        for (i, (k, v)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{k}\":\"");
            escape(v, out);
            out.push('"');
        }
        out.push('}');
    }
    out.push('}');
}

fn push_meta(out: &mut String, first: &mut bool, name: &str, pid: u32, tid: u64, value: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    let _ = write!(
        out,
        "{{\"name\":\"{name}\",\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid}"
    );
    out.push_str(",\"args\":{\"name\":\"");
    escape(value, out);
    out.push_str("\"}}");
}

/// Render the retained flight-recorder window plus the run's phase profile
/// as one Chrome trace-event JSON document.
pub fn chrome_trace_json(flight: &FlightRecorder, profile: &RunProfile) -> String {
    let mut out = String::with_capacity(4096 + flight.len() * 128);
    out.push_str("{\"traceEvents\":[\n");
    let mut first = true;

    // pid 1: query lifecycles on the sim clock, one tid per trace.
    push_meta(
        &mut out,
        &mut first,
        "process_name",
        1,
        0,
        "sim (virtual time)",
    );
    for (row, id) in flight.traces().iter().enumerate() {
        let tid = row as u64 + 1;
        let spans = flight.trace_spans(*id);
        let Some(start) = spans.iter().map(|s| s.time).min() else {
            continue;
        };
        let end = spans.iter().map(|s| s.time).max().unwrap_or(start);
        push_meta(
            &mut out,
            &mut first,
            "thread_name",
            1,
            tid,
            &format!("trace {id:016x}"),
        );
        let start_us = start.as_nanos() / 1_000;
        let dur_us = (end.as_nanos() - start.as_nanos()) / 1_000;
        push_event(
            &mut out,
            &mut first,
            &format!("trace {id:016x}"),
            'X',
            start_us,
            // Zero-duration complete events are invisible; floor at 1 µs.
            Some(dur_us.max(1)),
            1,
            tid,
            &[("spans", &spans.len().to_string())],
        );
        for s in &spans {
            push_event(
                &mut out,
                &mut first,
                s.kind.label(),
                'i',
                s.time.as_nanos() / 1_000,
                None,
                1,
                tid,
                &[("step", &s.step.to_string()), ("detail", &s.detail)],
            );
        }
    }

    // pid 2: pipeline phases on the wall clock, sequential in completion
    // order. Per-shard phases render as "name[sid]".
    push_meta(
        &mut out,
        &mut first,
        "process_name",
        2,
        0,
        "wall (pipeline phases)",
    );
    push_meta(&mut out, &mut first, "thread_name", 2, 1, "phases");
    let mut cursor_us: u64 = 0;
    for p in &profile.phases {
        let name = match p.shard {
            Some(sid) => format!("{}[{sid}]", p.name),
            None => p.name.clone(),
        };
        let dur = (p.wall.as_micros() as u64).max(1);
        push_event(
            &mut out,
            &mut first,
            &name,
            'X',
            cursor_us,
            Some(dur),
            2,
            1,
            &[],
        );
        cursor_us += dur;
    }

    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_netsim::{SimTime, SpanKind};
    use std::time::Duration;

    #[test]
    fn exports_spans_and_phases() {
        let mut fr = FlightRecorder::with_capacity(16);
        fr.record(SimTime::from_secs(1), 5, SpanKind::Send, "q \"out\"".into());
        fr.record(SimTime::from_secs(2), 5, SpanKind::Reply, "done".into());
        let mut profile = RunProfile::new();
        profile.record("worldgen-build", Duration::from_millis(3));
        profile.record_shard(
            "shard-run",
            0,
            Duration::from_millis(7),
            SimTime::from_secs(2),
        );
        let json = chrome_trace_json(&fr, &profile);
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"trace 0000000000000005\""), "{json}");
        assert!(json.contains("\"name\":\"send\""));
        assert!(json.contains("\"name\":\"reply\""));
        assert!(json.contains("q \\\"out\\\""), "escaped detail: {json}");
        assert!(json.contains("\"shard-run[0]\""));
        // Sim spans are on the virtual clock (t=1s -> 1_000_000 us).
        assert!(json.contains("\"ts\":1000000"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}\n"));
    }

    #[test]
    fn deterministic_for_same_inputs() {
        let mut fr = FlightRecorder::with_capacity(4);
        fr.record(SimTime::from_secs(3), 9, SpanKind::Deliver, "x".into());
        let profile = RunProfile::new();
        assert_eq!(
            chrome_trace_json(&fr, &profile),
            chrome_trace_json(&fr, &profile)
        );
    }
}
