//! Structured JSONL export.
//!
//! One self-describing JSON object per line; every record carries a `det`
//! flag. `det:true` records are the deterministic surface: they derive
//! from merged run artifacts and are byte-identical at any shard count
//! (the shard-equivalence suite compares [`deterministic_jsonl`] across
//! `BCD_SHARDS` configurations). `det:false` records carry everything
//! layout- or machine-dependent: wall-clock phase timings, per-shard
//! splits, and raw engine counters.
//!
//! The encoder is hand-rolled (the workspace vendors no JSON crate): keys
//! are emitted in a fixed order, strings escaped per RFC 8259, and all
//! numbers are integers (wall time is exported as microseconds), so the
//! byte-level output is stable across platforms.

use crate::metrics::{Det, Metric, MetricKey, MetricValue};
use crate::{PhaseRecord, RunObservation};
use std::fmt::Write;

/// Escape a string for a JSON string literal (quotes not included).
fn escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn push_str_field(out: &mut String, key: &str, value: &str) {
    let _ = write!(out, "\"{key}\":\"");
    escape(value, out);
    out.push('"');
}

fn push_labels(out: &mut String, labels: &[(String, String)]) {
    out.push_str("\"labels\":{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        escape(k, out);
        out.push_str("\":\"");
        escape(v, out);
        out.push('"');
    }
    out.push('}');
}

fn push_u64_array(out: &mut String, key: &str, values: &[u64]) {
    let _ = write!(out, "\"{key}\":[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// One `{"type":"metric",...}` line (no trailing newline).
fn metric_line(key: &MetricKey, m: &Metric, shard: Option<usize>) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"type\":\"metric\",\"det\":");
    s.push_str(if m.det == Det::Stable {
        "true"
    } else {
        "false"
    });
    s.push(',');
    push_str_field(&mut s, "name", &key.name);
    s.push(',');
    push_labels(&mut s, &key.labels);
    if let Some(sid) = shard {
        let _ = write!(s, ",\"shard\":{sid}");
    }
    match &m.value {
        MetricValue::Counter(c) => {
            let _ = write!(s, ",\"kind\":\"counter\",\"value\":{c}");
        }
        MetricValue::Gauge(g) => {
            let _ = write!(s, ",\"kind\":\"gauge\",\"value\":{g}");
        }
        MetricValue::Histogram(h) => {
            s.push_str(",\"kind\":\"histogram\",");
            push_u64_array(&mut s, "bounds", &h.bounds);
            s.push(',');
            push_u64_array(&mut s, "counts", &h.counts);
            let _ = write!(s, ",\"count\":{},\"sum\":{}", h.count, h.sum);
        }
    }
    s.push('}');
    s
}

fn phase_line(p: &PhaseRecord) -> String {
    let mut s = String::with_capacity(96);
    s.push_str("{\"type\":\"phase\",\"det\":false,");
    push_str_field(&mut s, "name", &p.name);
    match p.shard {
        Some(sid) => {
            let _ = write!(s, ",\"shard\":{sid}");
        }
        None => s.push_str(",\"shard\":null"),
    }
    let _ = write!(s, ",\"wall_us\":{}", p.wall.as_micros());
    match p.sim_end {
        Some(t) => {
            let _ = write!(s, ",\"sim_end_ns\":{}", t.as_nanos());
        }
        None => s.push_str(",\"sim_end_ns\":null"),
    }
    match p.rss_peak_kib {
        Some(kib) => {
            let _ = write!(s, ",\"rss_peak_kib\":{kib}");
        }
        None => s.push_str(",\"rss_peak_kib\":null"),
    }
    s.push('}');
    s
}

/// The deterministic export: `det:true` lines only, in canonical metric
/// order, plus the run's sim horizon. Byte-identical across shard counts.
pub fn deterministic_jsonl(obs: &RunObservation) -> String {
    let mut out = String::new();
    if let Some(h) = obs.profile.sim_horizon() {
        let _ = writeln!(
            out,
            "{{\"type\":\"sim\",\"det\":true,\"horizon_ns\":{}}}",
            h.as_nanos()
        );
    }
    for (k, m) in obs.aggregate.iter_class(Det::Stable) {
        out.push_str(&metric_line(k, m, None));
        out.push('\n');
    }
    out
}

/// The full export: a meta record, the deterministic block, then every
/// layout-dependent record (aggregate layout metrics, per-shard slices,
/// phase timings).
pub fn full_jsonl(obs: &RunObservation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"type\":\"meta\",\"det\":false,\"tool\":\"bcd-obs\",\"version\":1,\"seed\":{},\"shards\":{}}}",
        obs.seed, obs.shards
    );
    out.push_str(&deterministic_jsonl(obs));
    for (k, m) in obs.aggregate.iter_class(Det::Layout) {
        out.push_str(&metric_line(k, m, None));
        out.push('\n');
    }
    for (sid, reg) in obs.per_shard.iter().enumerate() {
        for (k, m) in reg.iter() {
            out.push_str(&metric_line(k, m, Some(sid)));
            out.push('\n');
        }
    }
    for p in &obs.profile.phases {
        out.push_str(&phase_line(p));
        out.push('\n');
    }
    out
}

/// Write the full export to `path` ([`RunObservation::write_jsonl`]).
pub fn export_jsonl(obs: &RunObservation, path: &std::path::Path) -> std::io::Result<()> {
    obs.write_jsonl(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use bcd_netsim::SimTime;
    use std::time::Duration;

    fn obs() -> RunObservation {
        let mut o = RunObservation {
            seed: 2019,
            shards: 2,
            ..RunObservation::default()
        };
        o.aggregate
            .add_counter("scanner.spoofed_sent", &[], Det::Stable, 42);
        o.aggregate
            .add_counter("net.drop", &[("reason", "dsav-ingress")], Det::Stable, 7);
        o.aggregate.add_counter("net.sent", &[], Det::Layout, 99);
        o.aggregate
            .observe("log.hours", &[], Det::Stable, &[1, 2], 1);
        let mut s0 = MetricsRegistry::new();
        s0.add_counter("net.sent", &[], Det::Layout, 60);
        o.per_shard.push(s0);
        o.profile
            .record("worldgen-build", Duration::from_micros(1500));
        o.profile.record_shard(
            "shard-run",
            0,
            Duration::from_millis(3),
            SimTime::from_secs(60),
        );
        o
    }

    #[test]
    fn deterministic_block_has_only_stable_records() {
        let text = deterministic_jsonl(&obs());
        assert!(text.contains("\"horizon_ns\":60000000000"));
        assert!(text.contains("\"scanner.spoofed_sent\""));
        assert!(text.contains("\"reason\":\"dsav-ingress\""));
        for line in text.lines() {
            assert!(line.contains("\"det\":true"), "non-det line: {line}");
        }
        // No wall-clock field anywhere in the deterministic block.
        assert!(!text.contains("wall_us"));
        assert!(!text.contains("\"net.sent\""));
    }

    #[test]
    fn full_export_layers_meta_layout_shards_phases() {
        let text = full_jsonl(&obs());
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines[0].contains("\"type\":\"meta\"") && lines[0].contains("\"seed\":2019"));
        assert!(text.contains("\"shard\":0"));
        assert!(text.contains("\"wall_us\":1500"));
        assert!(text.contains("\"sim_end_ns\":60000000000"));
        assert!(text.contains("\"kind\":\"histogram\""));
        assert!(text.contains("\"bounds\":[1,2]"));
        // Every line parses as a single JSON object (cheap structural check).
        for line in lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn strings_are_escaped() {
        let mut o = RunObservation::default();
        o.aggregate
            .add_counter("weird\"name", &[("k\\", "v\n")], Det::Stable, 1);
        let text = deterministic_jsonl(&o);
        assert!(text.contains("weird\\\"name"));
        assert!(text.contains("k\\\\"));
        assert!(text.contains("v\\n"));
    }
}
