//! # bcd-obs — deterministic observability for the survey pipeline
//!
//! The paper's survey (§3) is a multi-phase instrument: build a world, run
//! the spoofed scan (possibly sharded by destination AS), merge the
//! per-shard artifacts, analyse, render. Auditing such an instrument needs
//! two kinds of visibility with *opposite* determinism requirements:
//!
//! * **what the run measured** — probe/drop accounting, resolver cache
//!   behaviour, scanner progress. These must be *deterministic*: the same
//!   seed must produce byte-identical numbers at any shard count, or the
//!   observability layer itself would cast doubt on the sharding contract.
//! * **what the run cost** — wall-clock phase timings, per-shard work
//!   split. These are inherently machine- and layout-dependent.
//!
//! The crate keeps the two rigorously separated. Every metric and every
//! exported record carries a determinism class ([`Det`]):
//!
//! * [`Det::Stable`] values derive from *merged* run artifacts (the query
//!   log, scanner stats, client-path resolver counters) and are
//!   shard-count-invariant; the equivalence suite byte-compares their JSONL
//!   across `BCD_SHARDS` ∈ {1, 4, 8}.
//! * [`Det::Layout`] values (engine event counts, raw packet counters that
//!   include per-shard warmup traffic, per-shard breakdowns, wall-clock
//!   durations) are reported separately and excluded from the deterministic
//!   output.
//!
//! Pieces:
//!
//! * [`MetricsRegistry`] — labeled counters, gauges, and fixed-bucket
//!   histograms in a canonically-ordered map; implements the simulator's
//!   [`bcd_netsim::Merge`] trait so per-shard registries fold into the same
//!   aggregate in any order-of-shards (the fold is commutative: every
//!   combine is a sum).
//! * [`RunProfile`] — sim-time-aware spans: each pipeline phase (worldgen
//!   build, shard run, merge, analysis, report) records its wall-clock
//!   duration and, where it advances virtual time, the sim horizon it ran
//!   to.
//! * [`RunObservation`] — one run's full observability artifact:
//!   profile + deterministic aggregate + per-shard slices.
//! * [`export`] — a structured JSONL exporter (`BCD_OBS=path.jsonl`), one
//!   self-describing record per line, `det` flag on every record.
//! * [`report`] — the human-readable "run report" renderer (full, and a
//!   deterministic-only variant that the golden snapshot pins).
//! * [`ObsEnv`] — the zero-cost-when-disabled handle: reading the
//!   environment once yields either no-op sinks (default: no export, no
//!   heartbeat) or the configured ones; hot paths only ever consult plain
//!   `Option`s.

pub mod export;
pub mod metrics;
pub mod profile;
pub mod report;

pub use export::{deterministic_jsonl, export_jsonl, full_jsonl};
pub use metrics::{Det, Histogram, MetricKey, MetricValue, MetricsRegistry};
pub use profile::{PhaseRecord, RunProfile};

use std::path::PathBuf;

/// One run's complete observability artifact, assembled by the experiment
/// orchestrator after the merge.
#[derive(Debug, Default)]
pub struct RunObservation {
    /// Master seed of the run (mirrors the world config).
    pub seed: u64,
    /// Effective shard count (after clamping to distinct destination ASes).
    pub shards: usize,
    /// Wall + sim phase spans.
    pub profile: RunProfile,
    /// Merged metrics: [`Det::Stable`] entries are shard-count-invariant,
    /// [`Det::Layout`] entries are sums over the actual shard layout.
    pub aggregate: MetricsRegistry,
    /// Per-shard metric slices, in shard-id order (always [`Det::Layout`]:
    /// the split itself depends on the shard count).
    pub per_shard: Vec<MetricsRegistry>,
}

impl RunObservation {
    /// Serialize and write the full JSONL export, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, full_jsonl(self))
    }
}

/// Environment-driven observability switches, read once per run.
///
/// The default is fully disabled: no JSONL sink, no heartbeat. Hot paths
/// receive at most a copied `Option<u64>` out of this struct, so the
/// disabled cost is an untaken branch.
#[derive(Debug, Clone, Default)]
pub struct ObsEnv {
    /// `BCD_OBS=path.jsonl` — write the structured export here.
    pub jsonl_path: Option<PathBuf>,
    /// `BCD_PROGRESS=N` — scanner heartbeat to stderr every N probes
    /// (`0`, empty, or unset disables; bare `1`..: that interval).
    pub progress_every: Option<u64>,
}

impl ObsEnv {
    /// All sinks off (the no-op default).
    pub fn disabled() -> ObsEnv {
        ObsEnv::default()
    }

    /// Read `BCD_OBS` / `BCD_PROGRESS`.
    pub fn from_env() -> ObsEnv {
        let jsonl_path = std::env::var_os("BCD_OBS")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let progress_every = std::env::var("BCD_PROGRESS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0);
        ObsEnv {
            jsonl_path,
            progress_every,
        }
    }

    /// True if any sink is active.
    pub fn enabled(&self) -> bool {
        self.jsonl_path.is_some() || self.progress_every.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_env_is_noop() {
        let e = ObsEnv::disabled();
        assert!(!e.enabled());
        assert!(e.jsonl_path.is_none());
        assert!(e.progress_every.is_none());
    }

    #[test]
    fn observation_roundtrips_to_disk() {
        let mut obs = RunObservation {
            seed: 7,
            shards: 2,
            ..RunObservation::default()
        };
        obs.aggregate.add_counter("x.count", &[], Det::Stable, 3);
        let dir = std::env::temp_dir().join("bcd-obs-test");
        let path = dir.join("nested").join("run.jsonl");
        obs.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x.count\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
