//! # bcd-obs — deterministic observability for the survey pipeline
//!
//! The paper's survey (§3) is a multi-phase instrument: build a world, run
//! the spoofed scan (possibly sharded by destination AS), merge the
//! per-shard artifacts, analyse, render. Auditing such an instrument needs
//! two kinds of visibility with *opposite* determinism requirements:
//!
//! * **what the run measured** — probe/drop accounting, resolver cache
//!   behaviour, scanner progress. These must be *deterministic*: the same
//!   seed must produce byte-identical numbers at any shard count, or the
//!   observability layer itself would cast doubt on the sharding contract.
//! * **what the run cost** — wall-clock phase timings, per-shard work
//!   split. These are inherently machine- and layout-dependent.
//!
//! The crate keeps the two rigorously separated. Every metric and every
//! exported record carries a determinism class ([`Det`]):
//!
//! * [`Det::Stable`] values derive from *merged* run artifacts (the query
//!   log, scanner stats, client-path resolver counters) and are
//!   shard-count-invariant; the equivalence suite byte-compares their JSONL
//!   across `BCD_SHARDS` ∈ {1, 4, 8}.
//! * [`Det::Layout`] values (engine event counts, raw packet counters that
//!   include per-shard warmup traffic, per-shard breakdowns, wall-clock
//!   durations) are reported separately and excluded from the deterministic
//!   output.
//!
//! Pieces:
//!
//! * [`MetricsRegistry`] — labeled counters, gauges, and fixed-bucket
//!   histograms in a canonically-ordered map; implements the simulator's
//!   [`bcd_netsim::Merge`] trait so per-shard registries fold into the same
//!   aggregate in any order-of-shards (the fold is commutative: every
//!   combine is a sum).
//! * [`RunProfile`] — sim-time-aware spans: each pipeline phase (worldgen
//!   build, shard run, merge, analysis, report) records its wall-clock
//!   duration and, where it advances virtual time, the sim horizon it ran
//!   to.
//! * [`RunObservation`] — one run's full observability artifact:
//!   profile + deterministic aggregate + per-shard slices.
//! * [`export`] — a structured JSONL exporter (`BCD_OBS=path.jsonl`), one
//!   self-describing record per line, `det` flag on every record.
//! * [`report`] — the human-readable "run report" renderer (full, and a
//!   deterministic-only variant that the golden snapshot pins).
//! * [`ObsEnv`] — the zero-cost-when-disabled handle: reading the
//!   environment once yields either no-op sinks (default: no export, no
//!   heartbeat) or the configured ones; hot paths only ever consult plain
//!   `Option`s.

pub mod chrome;
pub mod export;
pub mod metrics;
pub mod profile;
pub mod report;

pub use chrome::chrome_trace_json;
pub use export::{deterministic_jsonl, export_jsonl, full_jsonl};
pub use metrics::{Det, Histogram, MetricKey, MetricValue, MetricsRegistry};
pub use profile::{peak_rss_kib, PhaseRecord, RunProfile};

use bcd_netsim::TraceSample;
use std::path::PathBuf;

/// One run's complete observability artifact, assembled by the experiment
/// orchestrator after the merge.
#[derive(Debug, Default)]
pub struct RunObservation {
    /// Master seed of the run (mirrors the world config).
    pub seed: u64,
    /// Effective shard count (after clamping to distinct destination ASes).
    pub shards: usize,
    /// Wall + sim phase spans.
    pub profile: RunProfile,
    /// Merged metrics: [`Det::Stable`] entries are shard-count-invariant,
    /// [`Det::Layout`] entries are sums over the actual shard layout.
    pub aggregate: MetricsRegistry,
    /// Per-shard metric slices, in shard-id order (always [`Det::Layout`]:
    /// the split itself depends on the shard count).
    pub per_shard: Vec<MetricsRegistry>,
}

impl RunObservation {
    /// Serialize and write the full JSONL export, creating parent
    /// directories as needed.
    pub fn write_jsonl(&self, path: &std::path::Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, full_jsonl(self))
    }
}

/// Causal-tracing configuration (the `BCD_TRACE` knob).
///
/// Grammar: comma-separated `key=value` settings —
/// `BCD_TRACE=sample=1/64,qname=dns-lab.org,cap=65536,out=trace.json`.
/// A bare `BCD_TRACE=1` arms the recorder with defaults (trace every
/// query, 65 536-span window, no Chrome export).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceConfig {
    /// Origin-side sampling policy (`sample=1/N` + `qname=suffix`).
    pub sample: TraceSample,
    /// Flight-recorder window capacity in spans (`cap=N`).
    pub capacity: usize,
    /// Write the Chrome trace-event JSON here after the run (`out=path`).
    pub chrome_out: Option<PathBuf>,
}

impl Default for TraceConfig {
    fn default() -> TraceConfig {
        TraceConfig {
            sample: TraceSample::default(),
            capacity: 65_536,
            chrome_out: None,
        }
    }
}

impl TraceConfig {
    /// Parse a `BCD_TRACE` value. Empty and `0` mean "off" (`None`);
    /// anything else arms tracing, with unknown keys ignored.
    pub fn parse(spec: &str) -> Option<TraceConfig> {
        let spec = spec.trim();
        if spec.is_empty() || spec == "0" {
            return None;
        }
        let mut cfg = TraceConfig::default();
        for part in spec.split(',') {
            let (key, value) = match part.split_once('=') {
                Some(kv) => kv,
                None => continue, // bare token ("1", "on"): defaults
            };
            match key.trim() {
                "sample" => {
                    // `1/N` (or a bare `N`, read as 1/N).
                    let n = value
                        .trim()
                        .strip_prefix("1/")
                        .unwrap_or(value.trim())
                        .parse::<u64>()
                        .unwrap_or(1);
                    cfg.sample.every = n.max(1);
                }
                "qname" if !value.trim().is_empty() => {
                    cfg.sample.qname_suffix = Some(value.trim().to_string());
                }
                "cap" => {
                    if let Ok(c) = value.trim().parse::<usize>() {
                        cfg.capacity = c;
                    }
                }
                "out" if !value.trim().is_empty() => {
                    cfg.chrome_out = Some(PathBuf::from(value.trim()));
                }
                _ => {}
            }
        }
        Some(cfg)
    }
}

/// Environment-driven observability switches, read once per run.
///
/// The default is fully disabled: no JSONL sink, no heartbeat, no flight
/// recorder. Hot paths receive at most a copied `Option` out of this
/// struct, so the disabled cost is an untaken branch.
#[derive(Debug, Clone, Default)]
pub struct ObsEnv {
    /// `BCD_OBS=path.jsonl` — write the structured export here.
    pub jsonl_path: Option<PathBuf>,
    /// `BCD_PROGRESS=N` — scanner heartbeat to stderr every N probes
    /// (`0`, empty, or unset disables; bare `1`..: that interval).
    pub progress_every: Option<u64>,
    /// `BCD_TRACE=sample=1/N[,qname=suffix][,cap=N][,out=path]` — arm the
    /// causal span flight recorder (see [`TraceConfig`]).
    pub trace: Option<TraceConfig>,
}

impl ObsEnv {
    /// All sinks off (the no-op default).
    pub fn disabled() -> ObsEnv {
        ObsEnv::default()
    }

    /// Read `BCD_OBS` / `BCD_PROGRESS` / `BCD_TRACE`.
    pub fn from_env() -> ObsEnv {
        let jsonl_path = std::env::var_os("BCD_OBS")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let progress_every = std::env::var("BCD_PROGRESS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .filter(|&n| n > 0);
        let trace = std::env::var("BCD_TRACE")
            .ok()
            .and_then(|v| TraceConfig::parse(&v));
        ObsEnv {
            jsonl_path,
            progress_every,
            trace,
        }
    }

    /// [`ObsEnv::disabled`] plus an armed flight recorder — what the chaos
    /// harness uses so violation dumps carry the causal window.
    pub fn with_trace(cfg: TraceConfig) -> ObsEnv {
        ObsEnv {
            trace: Some(cfg),
            ..ObsEnv::default()
        }
    }

    /// True if any sink is active.
    pub fn enabled(&self) -> bool {
        self.jsonl_path.is_some() || self.progress_every.is_some() || self.trace.is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_env_is_noop() {
        let e = ObsEnv::disabled();
        assert!(!e.enabled());
        assert!(e.jsonl_path.is_none());
        assert!(e.progress_every.is_none());
        assert!(e.trace.is_none());
    }

    #[test]
    fn trace_config_grammar() {
        assert_eq!(TraceConfig::parse(""), None);
        assert_eq!(TraceConfig::parse("0"), None);
        let def = TraceConfig::parse("1").unwrap();
        assert_eq!(def, TraceConfig::default());
        assert_eq!(def.sample.every, 1);
        assert_eq!(def.capacity, 65_536);

        let full = TraceConfig::parse("sample=1/64,qname=dns-lab.org,cap=1024,out=t.json").unwrap();
        assert_eq!(full.sample.every, 64);
        assert_eq!(full.sample.qname_suffix.as_deref(), Some("dns-lab.org"));
        assert_eq!(full.capacity, 1024);
        assert_eq!(
            full.chrome_out.as_deref(),
            Some(std::path::Path::new("t.json"))
        );

        // Bare-N sampling and unknown keys.
        let loose = TraceConfig::parse("sample=8,bogus=1").unwrap();
        assert_eq!(loose.sample.every, 8);
    }

    #[test]
    fn observation_roundtrips_to_disk() {
        let mut obs = RunObservation {
            seed: 7,
            shards: 2,
            ..RunObservation::default()
        };
        obs.aggregate.add_counter("x.count", &[], Det::Stable, 3);
        let dir = std::env::temp_dir().join("bcd-obs-test");
        let path = dir.join("nested").join("run.jsonl");
        obs.write_jsonl(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"x.count\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
