//! The metrics registry: labeled counters, gauges, and fixed-bucket
//! histograms in one canonically-ordered map.
//!
//! Determinism is structural, not incidental:
//!
//! * keys live in a `BTreeMap` ordered by `(name, labels)`, so iteration —
//!   and therefore every export and render — has one canonical order
//!   independent of insertion order;
//! * merging ([`bcd_netsim::Merge`]) is a per-key sum (counter + counter,
//!   gauge + gauge, bucket-wise for histograms), which is commutative and
//!   associative — folding per-shard registries yields the same aggregate
//!   for any shard count or fold order;
//! * histograms have *fixed* buckets chosen at first observation; merging
//!   two histograms with different bounds is a programming error and
//!   panics, because silently re-bucketing would make aggregates depend on
//!   the merge path.

use bcd_netsim::Merge;
use std::collections::BTreeMap;

/// Determinism class of a metric (or exported record).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Det {
    /// Derived from merged run artifacts; byte-identical at any shard
    /// count. Only `Stable` entries appear in the deterministic export.
    Stable,
    /// Depends on the shard layout, machine, or wall clock (per-shard
    /// splits, raw engine counters that include per-runtime warmup
    /// traffic, timings). Reported, but excluded from deterministic
    /// output.
    Layout,
}

/// Registry key: metric name plus sorted `(label, value)` pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: String,
    pub labels: Vec<(String, String)>,
}

impl MetricKey {
    /// Build a key; labels are sorted so equal label *sets* compare equal.
    pub fn new(name: &str, labels: &[(&str, &str)]) -> MetricKey {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        MetricKey {
            name: name.to_string(),
            labels,
        }
    }
}

/// A fixed-bucket histogram over `u64` observations.
///
/// `bounds[i]` is the inclusive upper edge of bucket `i`; one implicit
/// overflow bucket catches everything beyond the last bound, so
/// `counts.len() == bounds.len() + 1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    pub bounds: Vec<u64>,
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observed values (for mean reconstruction).
    pub sum: u64,
}

impl Histogram {
    /// An empty histogram with the given inclusive upper bounds (must be
    /// strictly increasing and non-empty).
    pub fn new(bounds: &[u64]) -> Histogram {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Record one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Bucket-wise sum; panics on mismatched bounds (see module docs).
    pub fn merge_from(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "merging histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
    }
}

/// A metric value of one of the three supported kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(i64),
    Histogram(Histogram),
}

/// A registered metric: its determinism class and current value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Metric {
    pub det: Det,
    pub value: MetricValue,
}

/// The registry. See module docs for the determinism contract.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsRegistry {
    metrics: BTreeMap<MetricKey, Metric>,
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Add to a counter (creating it at zero).
    pub fn add_counter(&mut self, name: &str, labels: &[(&str, &str)], det: Det, n: u64) {
        let key = MetricKey::new(name, labels);
        match self.metrics.entry(key) {
            std::collections::btree_map::Entry::Vacant(e) => {
                e.insert(Metric {
                    det,
                    value: MetricValue::Counter(n),
                });
            }
            std::collections::btree_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                match &mut m.value {
                    MetricValue::Counter(c) => *c += n,
                    other => panic!("metric {name:?} is not a counter: {other:?}"),
                }
            }
        }
    }

    /// Set a gauge to an absolute value (merges *sum* gauges — a gauge here
    /// is a point-in-time quantity whose per-shard parts add, e.g. cache
    /// entry counts).
    pub fn set_gauge(&mut self, name: &str, labels: &[(&str, &str)], det: Det, v: i64) {
        self.metrics.insert(
            MetricKey::new(name, labels),
            Metric {
                det,
                value: MetricValue::Gauge(v),
            },
        );
    }

    /// Record a histogram observation; the histogram is created with
    /// `bounds` on first use (later calls must pass identical bounds).
    pub fn observe(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        det: Det,
        bounds: &[u64],
        value: u64,
    ) {
        let key = MetricKey::new(name, labels);
        let m = self.metrics.entry(key).or_insert_with(|| Metric {
            det,
            value: MetricValue::Histogram(Histogram::new(bounds)),
        });
        match &mut m.value {
            MetricValue::Histogram(h) => h.observe(value),
            other => panic!("metric {name:?} is not a histogram: {other:?}"),
        }
    }

    /// Canonical iteration: `(name, labels)` order.
    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.metrics.iter()
    }

    /// Entries of one determinism class, in canonical order.
    pub fn iter_class(&self, det: Det) -> impl Iterator<Item = (&MetricKey, &Metric)> {
        self.metrics.iter().filter(move |(_, m)| m.det == det)
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Counter value by exact name + labels (0 if absent). For reports and
    /// tests.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> u64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric {
                value: MetricValue::Counter(c),
                ..
            }) => *c,
            _ => 0,
        }
    }

    /// Gauge value by exact name + labels (0 if absent).
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> i64 {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric {
                value: MetricValue::Gauge(g),
                ..
            }) => *g,
            _ => 0,
        }
    }

    /// All `(labels, counter)` entries sharing a name, canonical order.
    pub fn counters_named<'a>(
        &'a self,
        name: &'a str,
    ) -> impl Iterator<Item = (&'a [(String, String)], u64)> + 'a {
        self.metrics.iter().filter_map(move |(k, m)| {
            if k.name != name {
                return None;
            }
            match &m.value {
                MetricValue::Counter(c) => Some((k.labels.as_slice(), *c)),
                _ => None,
            }
        })
    }

    /// Copy in every entry of `other` whose key is *not* already present.
    ///
    /// This is how the run aggregate is assembled: the [`Det::Stable`]
    /// registry (built from merged artifacts) claims its keys first, then
    /// the fold of per-shard [`Det::Layout`] registries fills in the rest —
    /// a name the stable side already accounts for (e.g. the probe count)
    /// keeps its deterministic value instead of clashing across classes.
    pub fn absorb_new(&mut self, other: &MetricsRegistry) {
        for (key, m) in &other.metrics {
            self.metrics.entry(key.clone()).or_insert_with(|| m.clone());
        }
    }

    /// Histogram by exact name + labels, if present.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.metrics.get(&MetricKey::new(name, labels)) {
            Some(Metric {
                value: MetricValue::Histogram(h),
                ..
            }) => Some(h),
            _ => None,
        }
    }
}

impl Merge for MetricsRegistry {
    fn merge(&mut self, other: MetricsRegistry) {
        for (key, m) in other.metrics {
            match self.metrics.entry(key) {
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(m);
                }
                std::collections::btree_map::Entry::Occupied(mut e) => {
                    let name = e.key().name.clone();
                    let mine = e.get_mut();
                    assert_eq!(
                        mine.det, m.det,
                        "metric {name:?} merged with mismatched determinism class"
                    );
                    match (&mut mine.value, m.value) {
                        (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                        (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                        (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge_from(&b),
                        (mine, theirs) => {
                            panic!("metric {name:?} merged across kinds: {mine:?} vs {theirs:?}")
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(scale: u64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        r.add_counter("net.sent", &[], Det::Layout, 10 * scale);
        r.add_counter(
            "net.drop",
            &[("reason", "dsav-ingress")],
            Det::Stable,
            scale,
        );
        r.set_gauge("cache.answers", &[], Det::Layout, 3 * scale as i64);
        r.observe("lat", &[], Det::Stable, &[1, 10, 100], 5 * scale);
        r
    }

    #[test]
    fn counters_accumulate_and_read_back() {
        let mut r = MetricsRegistry::new();
        r.add_counter("a", &[("x", "1")], Det::Stable, 2);
        r.add_counter("a", &[("x", "1")], Det::Stable, 3);
        assert_eq!(r.counter("a", &[("x", "1")]), 5);
        assert_eq!(r.counter("a", &[("x", "2")]), 0);
        // Label order does not matter for identity.
        r.add_counter("b", &[("k", "v"), ("a", "z")], Det::Stable, 1);
        r.add_counter("b", &[("a", "z"), ("k", "v")], Det::Stable, 1);
        assert_eq!(r.counter("b", &[("k", "v"), ("a", "z")]), 2);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1, 10, 100]);
        for v in [0, 1, 2, 10, 99, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.sum, 1 + 2 + 10 + 99 + 100 + 101 + 5000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn histogram_rejects_unsorted_bounds() {
        Histogram::new(&[10, 5]);
    }

    #[test]
    fn merge_is_commutative_and_associative() {
        let (a, b, c) = (sample(1), sample(2), sample(5));
        let mut ab_c = a.clone();
        ab_c.merge(b.clone());
        ab_c.merge(c.clone());
        let mut a_bc = b.clone();
        a_bc.merge(c.clone());
        a_bc.merge(a.clone());
        assert_eq!(ab_c, a_bc);
        assert_eq!(ab_c.counter("net.sent", &[]), 80);
        assert_eq!(ab_c.gauge("cache.answers", &[]), 24);
        let h = ab_c.histogram("lat", &[]).unwrap();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum, 5 + 10 + 25);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_histogram_bounds() {
        let mut a = MetricsRegistry::new();
        a.observe("h", &[], Det::Stable, &[1, 2], 1);
        let mut b = MetricsRegistry::new();
        b.observe("h", &[], Det::Stable, &[1, 3], 1);
        a.merge(b);
    }

    #[test]
    #[should_panic(expected = "mismatched determinism class")]
    fn merge_rejects_mismatched_det_class() {
        let mut a = MetricsRegistry::new();
        a.add_counter("c", &[], Det::Stable, 1);
        let mut b = MetricsRegistry::new();
        b.add_counter("c", &[], Det::Layout, 1);
        a.merge(b);
    }

    #[test]
    fn canonical_iteration_order() {
        let mut r = MetricsRegistry::new();
        r.add_counter("z", &[], Det::Stable, 1);
        r.add_counter("a", &[("l", "2")], Det::Stable, 1);
        r.add_counter("a", &[("l", "1")], Det::Stable, 1);
        let names: Vec<String> = r
            .iter()
            .map(|(k, _)| format!("{}{:?}", k.name, k.labels))
            .collect();
        assert!(names[0].starts_with('a') && names[0].contains("\"1\""));
        assert!(names[2].starts_with('z'));
        assert_eq!(r.iter_class(Det::Stable).count(), 3);
        assert_eq!(r.iter_class(Det::Layout).count(), 0);
    }
}
