//! Sim-time-aware run profiling: phase spans over the survey pipeline.
//!
//! Each phase (worldgen build, shard run, merge, analysis, report) records
//! its wall-clock duration; phases that advance virtual time (the shard
//! runs) additionally record the sim horizon they simulated to. Wall-clock
//! values are [`crate::Det::Layout`] by definition and never enter the
//! deterministic export; the sim horizon *is* deterministic and appears
//! there separately.

use bcd_netsim::SimTime;
use std::time::{Duration, Instant};

/// The process's peak resident-set watermark (`VmHWM`) in KiB, read from
/// `/proc/self/status`. `None` off Linux or when the read fails. Monotone
/// over the process lifetime, so successive phase records show which phase
/// pushed the watermark up — the scale profiler's memory axis.
pub fn peak_rss_kib() -> Option<u64> {
    #[cfg(target_os = "linux")]
    {
        let status = std::fs::read_to_string("/proc/self/status").ok()?;
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmHWM:") {
                return rest.trim().trim_end_matches(" kB").trim().parse().ok();
            }
        }
        None
    }
    #[cfg(not(target_os = "linux"))]
    {
        None
    }
}

/// One completed phase span.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Phase name (canonical set: `worldgen-build`, `target-extract`,
    /// `source-plans`, `schedule-build`, `shard-spawn`, `shard-run`,
    /// `shard-extract`, `merge`, `analysis`, `report` — free-form names
    /// are fine too).
    pub name: String,
    /// Shard id for per-shard phases (`shard-run` and friends), else
    /// `None`.
    pub shard: Option<usize>,
    /// Wall-clock duration (layout/machine-dependent; excluded from
    /// deterministic output).
    pub wall: Duration,
    /// Virtual-time horizon the phase simulated to, when it ran the engine.
    pub sim_end: Option<SimTime>,
    /// Process peak-RSS watermark (KiB) at phase completion; `None` off
    /// Linux. Machine-dependent, like `wall`.
    pub rss_peak_kib: Option<u64>,
}

/// An append-only list of phase spans, in completion order.
#[derive(Debug, Clone, Default)]
pub struct RunProfile {
    pub phases: Vec<PhaseRecord>,
}

impl RunProfile {
    pub fn new() -> RunProfile {
        RunProfile::default()
    }

    /// Record an already-measured phase (stamps the current RSS watermark).
    pub fn record(&mut self, name: &str, wall: Duration) {
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            shard: None,
            wall,
            sim_end: None,
            rss_peak_kib: peak_rss_kib(),
        });
    }

    /// Record a per-shard engine phase with its sim horizon.
    pub fn record_shard(&mut self, name: &str, shard: usize, wall: Duration, sim_end: SimTime) {
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            shard: Some(shard),
            wall,
            sim_end: Some(sim_end),
            rss_peak_kib: peak_rss_kib(),
        });
    }

    /// Record a per-shard phase that does not advance virtual time
    /// (runtime spawn/warm-up, artifact extraction).
    pub fn record_shard_phase(&mut self, name: &str, shard: usize, wall: Duration) {
        self.phases.push(PhaseRecord {
            name: name.to_string(),
            shard: Some(shard),
            wall,
            sim_end: None,
            rss_peak_kib: peak_rss_kib(),
        });
    }

    /// Time a closure as a phase and return its result.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(name, t0.elapsed());
        out
    }

    /// Total wall time across all recorded phases.
    pub fn total_wall(&self) -> Duration {
        self.phases.iter().map(|p| p.wall).sum()
    }

    /// The sim horizon of the run: the maximum `sim_end` over all phases
    /// (identical across shards — every shard simulates the same horizon).
    pub fn sim_horizon(&self) -> Option<SimTime> {
        self.phases.iter().filter_map(|p| p.sim_end).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_records_a_phase() {
        let mut p = RunProfile::new();
        let v = p.time("analysis", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.phases.len(), 1);
        assert_eq!(p.phases[0].name, "analysis");
        assert!(p.phases[0].shard.is_none());
        assert!(p.phases[0].sim_end.is_none());
    }

    #[test]
    fn shard_phases_carry_sim_horizon() {
        let mut p = RunProfile::new();
        p.record("worldgen-build", Duration::from_millis(5));
        p.record_shard(
            "shard-run",
            0,
            Duration::from_millis(10),
            SimTime::from_secs(3600),
        );
        p.record_shard(
            "shard-run",
            1,
            Duration::from_millis(12),
            SimTime::from_secs(3600),
        );
        assert_eq!(p.sim_horizon(), Some(SimTime::from_secs(3600)));
        assert_eq!(p.total_wall(), Duration::from_millis(27));
    }
}
