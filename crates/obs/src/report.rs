//! The human-readable "run report".
//!
//! Two renderers over one [`RunObservation`]:
//!
//! * [`render_run_report_deterministic`] — only the shard-invariant
//!   surface (sim horizon + [`Det::Stable`] metrics + derived rates).
//!   This is what the golden snapshot pins: it must render byte-identically
//!   under any `BCD_SHARDS`.
//! * [`render_run_report`] — the full report: deterministic block plus
//!   wall-clock phase timings, layout-dependent engine totals, and the
//!   per-shard packet/drop breakdown.
//!
//! Well-known metric names live in [`names`]; the instrumentation in
//! `bcd-core` registers under these so the renderer can compute derived
//! rates (cache hit rate, drop totals) without a dependency cycle.

use crate::metrics::{Det, MetricValue, MetricsRegistry};
use crate::RunObservation;
use std::fmt::Write;

/// Canonical metric names shared between the instrumentation (in
/// `bcd-core`) and this renderer.
pub mod names {
    /// Packets handed to the network (includes per-runtime warmup traffic:
    /// layout-dependent).
    pub const NET_SENT: &str = "net.sent";
    pub const NET_DELIVERED: &str = "net.delivered";
    pub const NET_DUPLICATED: &str = "net.duplicated";
    pub const NET_INTERCEPTED: &str = "net.intercepted";
    /// Drop counter, one per `DropReason` under the `reason` label.
    pub const NET_DROP: &str = "net.drop";
    pub const ENGINE_EVENTS: &str = "engine.events";
    pub const TRACE_CAPTURED: &str = "trace.captured";
    pub const TRACE_EVICTED: &str = "trace.evicted";
    /// Causal span flight-recorder counters (`BCD_TRACE`). Stable when the
    /// run is loss-free (traced traffic is shard-partitioned and warmup is
    /// never traced); layout-class when stochastic link faults ran.
    pub const SPAN_RECORDED: &str = "span.recorded";
    pub const SPAN_RETAINED: &str = "span.retained";
    pub const SPAN_EVICTED: &str = "span.evicted";
    pub const SPAN_TRACES: &str = "span.traces";
    /// Schedule-construction accounting (streaming per-lane build): probe
    /// totals, sampled-target counts and lane occupancy are pure functions
    /// of (seed, population, rate) — fully stable across layouts.
    pub const SCHEDULE_PROBES: &str = "schedule.probes";
    pub const SCHEDULE_TARGETS: &str = "schedule.targets";
    pub const SCHEDULE_LANES: &str = "schedule.lanes";
    pub const SCHEDULE_END_SECS: &str = "schedule.end_secs";
    /// Client-path resolver counters (deterministic: client traffic is
    /// partitioned by shard, never duplicated).
    pub const DNS_CLIENT_QUERIES: &str = "dns.client_queries";
    pub const DNS_REFUSED: &str = "dns.refused";
    pub const DNS_ANSWERED: &str = "dns.answered";
    pub const DNS_CACHE_HITS: &str = "dns.cache_hits";
    pub const DNS_CACHE_MISSES: &str = "dns.cache_misses";
    /// Resolution-path resolver counters (include warmup resolutions,
    /// which every shard runtime repeats: layout-dependent).
    pub const DNS_UPSTREAM_QUERIES: &str = "dns.upstream_queries";
    pub const DNS_SERVFAIL: &str = "dns.servfail";
    pub const DNS_TCP_RETRIES: &str = "dns.tcp_retries";
    pub const DNS_CACHE_ANSWERS: &str = "dns.cache_entries.answers";
    pub const DNS_CACHE_NXDOMAINS: &str = "dns.cache_entries.nxdomains";
    pub const DNS_CACHE_CUTS: &str = "dns.cache_entries.cuts";
    /// Scanner counters (deterministic: merged `ScannerStats`).
    pub const SCANNER_SPOOFED: &str = "scanner.spoofed_sent";
    pub const SCANNER_FOLLOWUP_SETS: &str = "scanner.followup_sets";
    pub const SCANNER_FOLLOWUPS: &str = "scanner.followup_queries";
    pub const SCANNER_OPEN_PROBES: &str = "scanner.open_probes";
    pub const SCANNER_TCP_PROBES: &str = "scanner.tcp_probes";
    pub const SCANNER_HUMAN: &str = "scanner.human_lookups";
    pub const SCANNER_RESPONSES: &str = "scanner.responses_received";
    pub const SCANNER_REFUSED: &str = "scanner.refused_responses";
    pub const SCANNER_OPTED_OUT: &str = "scanner.opted_out";
    pub const SCANNER_DEFERRALS: &str = "scanner.outage_deferrals";
    /// Scanner response breakdown, one counter per `rcode` label.
    pub const SCANNER_RESPONSE: &str = "scanner.response";
    /// Merged authoritative-log size (deterministic).
    pub const LOG_ENTRIES: &str = "log.entries";
    /// Histogram of log-entry sim-times, in hours since scan start.
    pub const LOG_ENTRY_HOURS: &str = "log.entry_sim_hours";
    /// Compiled chaos-schedule event counts, one per `kind` label
    /// (deterministic: the fault schedule is compiled once per world and
    /// shared by every shard).
    pub const CHAOS_EVENTS: &str = "chaos.events";
    /// Number of enabled fault events (differs from the total only under a
    /// delta-debugging replay that restricts the schedule).
    pub const CHAOS_EVENTS_ENABLED: &str = "chaos.events_enabled";
    /// World-shape gauges (identical in every shard).
    pub const WORLD_HOSTS: &str = "world.hosts";
    pub const WORLD_ASES: &str = "world.ases";
    pub const WORLD_TARGETS_V4: &str = "world.targets_v4";
    pub const WORLD_TARGETS_V6: &str = "world.targets_v6";
    /// Target-extraction hygiene: DITL candidate rows the streaming
    /// deduplicator had to reject because they arrived out of canonical
    /// order (deterministic; 0 on healthy worldgen output).
    pub const TARGETS_EXCLUDED_UNSORTED: &str = "targets.excluded_unsorted";
    /// Forged responses injected by the spoofed-response chaos adversary
    /// (layout-dependent: injection rides the per-shard fault stream).
    pub const NET_INJECTED: &str = "net.injected";
    /// Cross-method validation counters (deterministic: both methods and
    /// the matrix are shard-invariant). `agreement.*` counts ASes in each
    /// cell of the method-A × method-B matrix; `false_open`/`false_closed`
    /// carry a `method` label and score each method against the world's
    /// ground-truth SAV policy.
    pub const CRP_PROBES: &str = "crp.probes";
    pub const CRP_LOG_ENTRIES: &str = "crp.log_entries";
    pub const AGREEMENT_UNIVERSE: &str = "agreement.universe";
    pub const AGREEMENT_AGREE_OPEN: &str = "agreement.agree_open";
    pub const AGREEMENT_AGREE_CLOSED: &str = "agreement.agree_closed";
    pub const AGREEMENT_A_ONLY: &str = "agreement.a_only";
    pub const AGREEMENT_B_ONLY: &str = "agreement.b_only";
    pub const AGREEMENT_FALSE_OPEN: &str = "agreement.false_open";
    pub const AGREEMENT_FALSE_CLOSED: &str = "agreement.false_closed";
}

fn fmt_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let inner: Vec<String> = labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!("{{{}}}", inner.join(","))
}

/// Render one determinism class of a registry as aligned `name value`
/// lines (histograms get a bucket breakdown).
fn render_class(out: &mut String, reg: &MetricsRegistry, det: Det, indent: &str) {
    let rows: Vec<(String, &MetricValue)> = reg
        .iter_class(det)
        .map(|(k, m)| (format!("{}{}", k.name, fmt_labels(&k.labels)), &m.value))
        .collect();
    let width = rows.iter().map(|(n, _)| n.len()).max().unwrap_or(0);
    for (name, value) in rows {
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "{indent}{name:<width$}  {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "{indent}{name:<width$}  {g}");
            }
            MetricValue::Histogram(h) => {
                let _ = writeln!(out, "{indent}{name:<width$}  n={} sum={}", h.count, h.sum);
                for (i, c) in h.counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    let edge = match h.bounds.get(i) {
                        Some(b) => format!("le {b}"),
                        None => "inf".to_string(),
                    };
                    let _ = writeln!(out, "{indent}  {edge:>8}: {c}");
                }
            }
        }
    }
}

fn pct(n: u64, d: u64) -> String {
    if d == 0 {
        "-".to_string()
    } else {
        format!("{:.1}%", 100.0 * n as f64 / d as f64)
    }
}

/// Derived deterministic rates: resolver cache hit rate, scanner response
/// rate, total drops by reason.
fn render_derived(out: &mut String, reg: &MetricsRegistry) {
    let hits = reg.counter(names::DNS_CACHE_HITS, &[]);
    let misses = reg.counter(names::DNS_CACHE_MISSES, &[]);
    let _ = writeln!(
        out,
        "resolver cache: {hits} hits / {misses} misses ({} hit rate)",
        pct(hits, hits + misses)
    );
    let probes = reg.counter(names::SCANNER_SPOOFED, &[]);
    let responses = reg.counter(names::SCANNER_RESPONSES, &[]);
    let _ = writeln!(
        out,
        "scanner: {probes} spoofed probes, {responses} responses at real addresses ({})",
        pct(responses, probes)
    );
    // Only the *stable* drop breakdown belongs here: with link-loss noise
    // enabled the instrumentation registers drops as `Det::Layout` and this
    // block stays silent rather than leak layout-dependent numbers into the
    // deterministic report.
    let stable_drops: Vec<(&[(String, String)], u64)> = reg
        .iter_class(Det::Stable)
        .filter(|(k, _)| k.name == names::NET_DROP)
        .filter_map(|(k, m)| match m.value {
            MetricValue::Counter(c) => Some((k.labels.as_slice(), c)),
            _ => None,
        })
        .collect();
    let drops: u64 = stable_drops.iter().map(|(_, c)| c).sum();
    if drops > 0 {
        let _ = writeln!(out, "probe-path drops by reason ({drops} total):");
        for (labels, c) in stable_drops {
            let reason = labels
                .iter()
                .find(|(k, _)| k == "reason")
                .map(|(_, v)| v.as_str())
                .unwrap_or("?");
            let _ = writeln!(out, "  {reason:<22} {c:>10}  ({})", pct(c, drops));
        }
    }
}

/// The shard-invariant report: golden-snapshot-stable under any
/// `BCD_SHARDS`.
pub fn render_run_report_deterministic(obs: &RunObservation) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "== survey run report (deterministic) ==");
    let _ = writeln!(s, "seed {}", obs.seed);
    if let Some(h) = obs.profile.sim_horizon() {
        let _ = writeln!(s, "sim horizon: {h}");
    }
    s.push('\n');
    render_derived(&mut s, &obs.aggregate);
    let _ = writeln!(s, "\naggregates (shard-invariant):");
    render_class(&mut s, &obs.aggregate, Det::Stable, "  ");
    s
}

/// The full report: deterministic block + wall-clock phases + layout
/// totals + per-shard breakdown.
pub fn render_run_report(obs: &RunObservation) -> String {
    let mut s = render_run_report_deterministic(obs);
    let _ = writeln!(s, "\n-- phases (wall-clock; machine-dependent) --");
    for p in &obs.profile.phases {
        let name = match p.shard {
            Some(sid) => format!("{}[{sid}]", p.name),
            None => p.name.clone(),
        };
        let sim = match p.sim_end {
            Some(t) => format!("  (sim {t})"),
            None => String::new(),
        };
        let rss = match p.rss_peak_kib {
            Some(kib) => format!("  rss-peak {:.2} GiB", kib as f64 / (1024.0 * 1024.0)),
            None => String::new(),
        };
        let _ = writeln!(s, "  {name:<20} {:>9.3}s{sim}{rss}", p.wall.as_secs_f64());
    }
    let _ = writeln!(
        s,
        "  {:<20} {:>9.3}s",
        "total",
        obs.profile.total_wall().as_secs_f64()
    );

    let _ = writeln!(s, "\n-- engine totals (layout-dependent) --");
    render_class(&mut s, &obs.aggregate, Det::Layout, "  ");

    // Bounded-window accounting: the packet-capture ring and the causal
    // span flight recorder. Both eviction counts are shard-invariant by
    // construction (canonical-order eviction; the invariance suites assert
    // equality at every `BCD_SHARDS`).
    let captured = obs.aggregate.counter(names::TRACE_CAPTURED, &[]);
    let trace_evicted = obs.aggregate.counter(names::TRACE_EVICTED, &[]);
    if captured + trace_evicted > 0 {
        let _ = writeln!(s, "\n-- packet-capture window --");
        let _ = writeln!(
            s,
            "  retained {captured} entries, evicted {trace_evicted} (bounded ring)"
        );
    }
    let recorded = obs.aggregate.counter(names::SPAN_RECORDED, &[]);
    if recorded > 0 {
        let _ = writeln!(s, "\n-- causal tracing (flight recorder) --");
        let _ = writeln!(
            s,
            "  {recorded} spans recorded over {} traces; window retains {}, evicted {}",
            obs.aggregate.counter(names::SPAN_TRACES, &[]),
            obs.aggregate.counter(names::SPAN_RETAINED, &[]),
            obs.aggregate.counter(names::SPAN_EVICTED, &[]),
        );
    }

    if obs.per_shard.len() > 1 {
        let _ = writeln!(
            s,
            "\n-- per-shard breakdown ({} shards) --",
            obs.per_shard.len()
        );
        for (sid, reg) in obs.per_shard.iter().enumerate() {
            let drops: u64 = reg.counters_named(names::NET_DROP).map(|(_, c)| c).sum();
            let _ = writeln!(
                s,
                "  shard {sid}: probes={} events={} sent={} delivered={} dropped={}",
                reg.counter(names::SCANNER_SPOOFED, &[]),
                reg.counter(names::ENGINE_EVENTS, &[]),
                reg.counter(names::NET_SENT, &[]),
                reg.counter(names::NET_DELIVERED, &[]),
                drops,
            );
            for (labels, c) in reg.counters_named(names::NET_DROP) {
                let reason = labels
                    .iter()
                    .find(|(k, _)| k == "reason")
                    .map(|(_, v)| v.as_str())
                    .unwrap_or("?");
                let _ = writeln!(s, "      drop {reason:<22} {c}");
            }
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use bcd_netsim::SimTime;
    use std::time::Duration;

    fn obs() -> RunObservation {
        let mut o = RunObservation {
            seed: 11,
            shards: 2,
            ..RunObservation::default()
        };
        o.aggregate
            .add_counter(names::DNS_CACHE_HITS, &[], Det::Stable, 30);
        o.aggregate
            .add_counter(names::DNS_CACHE_MISSES, &[], Det::Stable, 70);
        o.aggregate
            .add_counter(names::SCANNER_SPOOFED, &[], Det::Stable, 200);
        o.aggregate
            .add_counter(names::SCANNER_RESPONSES, &[], Det::Stable, 20);
        o.aggregate.add_counter(
            names::NET_DROP,
            &[("reason", "dsav-ingress")],
            Det::Stable,
            10,
        );
        o.aggregate
            .add_counter(names::NET_SENT, &[], Det::Layout, 999);
        let mut s0 = MetricsRegistry::new();
        s0.add_counter(names::NET_SENT, &[], Det::Layout, 500);
        let mut s1 = MetricsRegistry::new();
        s1.add_counter(names::NET_SENT, &[], Det::Layout, 499);
        o.per_shard.push(s0);
        o.per_shard.push(s1);
        o.profile
            .record("worldgen-build", Duration::from_millis(12));
        o.profile.record_shard(
            "shard-run",
            0,
            Duration::from_millis(40),
            SimTime::from_secs(60),
        );
        o
    }

    #[test]
    fn deterministic_report_excludes_wall_and_layout() {
        let text = render_run_report_deterministic(&obs());
        assert!(
            text.contains("30 hits / 70 misses (30.0% hit rate)"),
            "{text}"
        );
        assert!(text.contains("dsav-ingress"));
        assert!(!text.contains("wall"));
        assert!(!text.contains("net.sent"));
        assert!(!text.contains("phases"));
    }

    #[test]
    fn full_report_adds_phases_and_shards() {
        let text = render_run_report(&obs());
        assert!(text.contains("phases (wall-clock"));
        assert!(text.contains("shard-run[0]"));
        assert!(text.contains("(sim 60.000000000s)"), "{text}");
        assert!(text.contains("per-shard breakdown (2 shards)"));
        assert!(text.contains("net.sent"));
        assert!(text.contains("sent=500"));
    }
}
