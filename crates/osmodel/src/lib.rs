//! # bcd-osmodel — operating-system network-stack models
//!
//! The paper characterizes OSes along three axes, all reproduced here from
//! its own lab results:
//!
//! * **anomalous-source acceptance** (Table 6): which kernels deliver
//!   destination-as-source and loopback-source packets to user space
//!   ([`Os::stack_policy`]),
//! * **ephemeral source-port allocation** (Table 5 + §5.3.2): the pool each
//!   OS/DNS-software combination draws UDP source ports from
//!   ([`PortAllocator`], [`DnsSoftware`]) — the observable that enables both
//!   the cache-poisoning census (§5.2) and OS identification (§5.3.2),
//! * **TCP SYN fingerprints** (§5.3.1): the p0f-visible header fields each
//!   OS emits ([`TcpSignature`], [`P0fClassifier`]).

pub mod os;
pub mod p0f;
pub mod ports;
pub mod software;

pub use os::Os;
pub use p0f::{P0fClass, P0fClassifier, TcpSignature};
pub use ports::PortAllocator;
pub use software::DnsSoftware;
