//! Operating-system identities and their kernel-level behaviours.
//!
//! Variants mirror the OS matrix of the paper's lab experiments (§5.3.2 and
//! Table 6). Each OS knows:
//!
//! * its [`bcd_netsim::StackPolicy`] — acceptance of destination-as-source
//!   (DS) and loopback (LB) packets, per IP version (Table 6),
//! * its default ephemeral port pool (§5.3.2 lab findings),
//! * its initial IP TTL (used by the p0f model).

use crate::ports::PortAllocator;
use bcd_netsim::StackPolicy;
use std::fmt;

/// Operating systems the paper's lab characterized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Os {
    /// Ubuntu 16.04 / 18.04 / 19.x — Linux kernels ≥ 4.15.
    /// Accepts DS over IPv6 only; drops loopback.
    LinuxModern,
    /// Ubuntu 10.04 / 12.04 / 14.04 — Linux kernels 2.6–4.4.
    /// Accepts DS over IPv6 *and* loopback over IPv6 (§5.5: the two
    /// operators who confirmed kernels 3.10 / 2.6).
    LinuxOld,
    /// FreeBSD 11.3 / 12.x. Accepts DS over both versions; drops loopback.
    FreeBsd,
    /// Windows Server 2008 R2 / 2012 / 2012 R2 / 2016 / 2019.
    /// Accepts DS over both versions; drops loopback.
    WindowsModern,
    /// Windows Server 2008 (pre-R2): same stack acceptance as modern, but
    /// Windows DNS still used a single source port.
    Windows2008,
    /// Windows Server 2003 / 2003 R2. Accepts DS both versions and IPv4
    /// loopback (the only OS in the study that did).
    Windows2003,
    /// Hosts whose TCP fingerprint matches BaiduSpider (§5.3.1 found 20% of
    /// zero-range resolvers matching this crawler profile). Stack modelled
    /// as a hardened Linux.
    BaiduCrawler,
}

impl Os {
    /// All variants, for exhaustive lab sweeps.
    pub const ALL: [Os; 7] = [
        Os::LinuxModern,
        Os::LinuxOld,
        Os::FreeBsd,
        Os::WindowsModern,
        Os::Windows2008,
        Os::Windows2003,
        Os::BaiduCrawler,
    ];

    /// Kernel acceptance of anomalous-source packets (paper Table 6).
    pub fn stack_policy(self) -> StackPolicy {
        match self {
            Os::LinuxModern | Os::BaiduCrawler => StackPolicy {
                accept_dst_as_src_v4: false,
                accept_dst_as_src_v6: true,
                accept_loopback_v4: false,
                accept_loopback_v6: false,
            },
            Os::LinuxOld => StackPolicy {
                accept_dst_as_src_v4: false,
                accept_dst_as_src_v6: true,
                accept_loopback_v4: false,
                accept_loopback_v6: true,
            },
            Os::FreeBsd | Os::WindowsModern | Os::Windows2008 => StackPolicy {
                accept_dst_as_src_v4: true,
                accept_dst_as_src_v6: true,
                accept_loopback_v4: false,
                accept_loopback_v6: false,
            },
            Os::Windows2003 => StackPolicy {
                accept_dst_as_src_v4: true,
                accept_dst_as_src_v6: true,
                accept_loopback_v4: true,
                accept_loopback_v6: false,
            },
        }
    }

    /// The OS-designated ephemeral port pool, as measured in the paper's
    /// lab (§5.3.2):
    ///
    /// * Linux: 32768–61000, "a pool of size 28,232",
    /// * FreeBSD: the IANA range 49152–65535, "a pool of size 16,383",
    /// * Windows: for software deferring to the OS (e.g. BIND ≥ 9.9), the
    ///   full unprivileged range 1024–65535 ("64,511").
    ///
    /// Pool sizes follow the paper's reported counts exactly (the paper
    /// counts range spans, so each pool's inclusive top is `lo + size - 1`).
    pub fn default_port_allocator(self) -> PortAllocator {
        match self {
            Os::LinuxModern | Os::LinuxOld | Os::BaiduCrawler => {
                PortAllocator::uniform(32_768, 28_232)
            }
            Os::FreeBsd => PortAllocator::uniform(49_152, 16_383),
            Os::WindowsModern | Os::Windows2008 | Os::Windows2003 => {
                PortAllocator::uniform(1_024, 64_511)
            }
        }
    }

    /// Initial IP TTL / hop limit of packets this OS sends.
    pub fn initial_ttl(self) -> u8 {
        match self {
            Os::LinuxModern | Os::LinuxOld | Os::FreeBsd | Os::BaiduCrawler => 64,
            Os::WindowsModern | Os::Windows2008 | Os::Windows2003 => 128,
        }
    }

    /// True for any Windows Server variant.
    pub fn is_windows(self) -> bool {
        matches!(self, Os::WindowsModern | Os::Windows2008 | Os::Windows2003)
    }

    /// True for any Linux variant (including the Baidu crawler profile).
    pub fn is_linux(self) -> bool {
        matches!(self, Os::LinuxModern | Os::LinuxOld | Os::BaiduCrawler)
    }
}

impl fmt::Display for Os {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Os::LinuxModern => "Linux (kernel >= 4.15)",
            Os::LinuxOld => "Linux (kernel <= 4.4)",
            Os::FreeBsd => "FreeBSD",
            Os::WindowsModern => "Windows Server (2008 R2+)",
            Os::Windows2008 => "Windows Server 2008",
            Os::Windows2003 => "Windows Server 2003",
            Os::BaiduCrawler => "BaiduSpider-profile host",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Re-states the paper's Table 6 row by row.
    #[test]
    fn table6_acceptance_matrix() {
        // Ubuntu 16.04+: DS v6 only.
        let p = Os::LinuxModern.stack_policy();
        assert!(!p.accept_dst_as_src_v4 && p.accept_dst_as_src_v6);
        assert!(!p.accept_loopback_v4 && !p.accept_loopback_v6);
        // Ubuntu 10.04–14.04: DS v6 + LB v6.
        let p = Os::LinuxOld.stack_policy();
        assert!(!p.accept_dst_as_src_v4 && p.accept_dst_as_src_v6);
        assert!(!p.accept_loopback_v4 && p.accept_loopback_v6);
        // FreeBSD: DS v4+v6.
        let p = Os::FreeBsd.stack_policy();
        assert!(p.accept_dst_as_src_v4 && p.accept_dst_as_src_v6);
        assert!(!p.accept_loopback_v4 && !p.accept_loopback_v6);
        // Windows 2008..2019: DS v4+v6.
        for os in [Os::WindowsModern, Os::Windows2008] {
            let p = os.stack_policy();
            assert!(p.accept_dst_as_src_v4 && p.accept_dst_as_src_v6);
            assert!(!p.accept_loopback_v4 && !p.accept_loopback_v6);
        }
        // Windows 2003: DS v4+v6 plus LB v4.
        let p = Os::Windows2003.stack_policy();
        assert!(p.accept_dst_as_src_v4 && p.accept_dst_as_src_v6);
        assert!(p.accept_loopback_v4 && !p.accept_loopback_v6);
    }

    /// The paper's §6 observation: *every* tested OS accepts IPv6
    /// destination-as-source, and all but (modern) Linux accept IPv4 DS.
    #[test]
    fn universal_v6_ds_acceptance() {
        for os in Os::ALL {
            assert!(
                os.stack_policy().accept_dst_as_src_v6,
                "{os} should accept IPv6 dst-as-src"
            );
        }
    }

    #[test]
    fn pool_sizes_match_paper() {
        assert_eq!(Os::LinuxModern.default_port_allocator().pool_size(), 28_232);
        assert_eq!(Os::FreeBsd.default_port_allocator().pool_size(), 16_383);
        assert_eq!(
            Os::WindowsModern.default_port_allocator().pool_size(),
            64_511
        );
    }

    #[test]
    fn ttl_by_family() {
        assert_eq!(Os::LinuxModern.initial_ttl(), 64);
        assert_eq!(Os::FreeBsd.initial_ttl(), 64);
        assert_eq!(Os::WindowsModern.initial_ttl(), 128);
    }

    #[test]
    fn family_predicates() {
        assert!(Os::Windows2003.is_windows());
        assert!(!Os::FreeBsd.is_windows());
        assert!(Os::LinuxOld.is_linux());
        assert!(Os::BaiduCrawler.is_linux());
        assert!(!Os::WindowsModern.is_linux());
    }
}
