//! Passive TCP/IP OS fingerprinting — a p0f-style signature database and
//! classifier.
//!
//! The experiment's TCP follow-up query (§3.5) makes each resolver open a
//! TCP connection to the authoritative server; p0f then keys on the SYN's
//! IP TTL, window size, MSS, and option layout (§5.3.1). In the paper only
//! ~10% of resolvers were classifiable — the rest emit signatures absent
//! from the database (middlebox-normalized, scrubbed, or simply unknown
//! stacks). We model that with a *generic* signature emitted by hosts whose
//! path or stack hides the OS fingerprint.

use crate::os::Os;
use bcd_netsim::{TcpOptions, TcpSegment};
use std::fmt;

/// The fields p0f reads from a SYN.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TcpSignature {
    /// Initial TTL, inferred by rounding the observed TTL up to the nearest
    /// common initial value (32/64/128/255).
    pub ittl: u8,
    /// Window size as sent.
    pub window: u16,
    /// MSS option value.
    pub mss: u16,
    /// Option layout mnemonic string, p0f-style.
    pub layout: &'static str,
}

/// Classification outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum P0fClass {
    Windows,
    Linux,
    FreeBsd,
    BaiduSpider,
    Unknown,
}

impl fmt::Display for P0fClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            P0fClass::Windows => "Windows",
            P0fClass::Linux => "Linux",
            P0fClass::FreeBsd => "FreeBSD",
            P0fClass::BaiduSpider => "BaiduSpider",
            P0fClass::Unknown => "unknown",
        };
        f.write_str(s)
    }
}

impl Os {
    /// The SYN signature this OS emits (when not scrubbed en route).
    pub fn syn_signature(self) -> TcpSignature {
        match self {
            Os::LinuxModern | Os::LinuxOld => TcpSignature {
                ittl: 64,
                window: 29_200,
                mss: 1_460,
                layout: "mss,sok,ts,nop,ws",
            },
            Os::FreeBsd => TcpSignature {
                ittl: 64,
                window: 65_535,
                mss: 1_460,
                layout: "mss,nop,ws,sok,ts",
            },
            Os::WindowsModern | Os::Windows2008 => TcpSignature {
                ittl: 128,
                window: 8_192,
                mss: 1_460,
                layout: "mss,nop,ws,nop,nop,sok",
            },
            Os::Windows2003 => TcpSignature {
                ittl: 128,
                window: 65_535,
                mss: 1_460,
                layout: "mss,nop,nop,sok",
            },
            Os::BaiduCrawler => TcpSignature {
                ittl: 64,
                window: 14_600,
                mss: 1_424,
                layout: "mss,sok,ts,nop,ws",
            },
        }
    }
}

/// The anonymous signature emitted when a middlebox or scrubber normalizes
/// the SYN — matches nothing in the database, so p0f reports unknown (the
/// paper's 90%).
pub fn generic_signature() -> TcpSignature {
    TcpSignature {
        ittl: 255,
        window: 16_384,
        mss: 1_380,
        layout: "mss",
    }
}

/// Build the TCP SYN segment a host with this signature sends. The TTL is
/// applied by the caller at the IP layer via [`bcd_netsim::Packet::with_ttl`].
pub fn syn_segment(sig: TcpSignature, src_port: u16, dst_port: u16, seq: u32) -> TcpSegment {
    TcpSegment {
        src_port,
        dst_port,
        flags: bcd_netsim::TcpFlags::SYN,
        seq,
        ack: 0,
        window: sig.window,
        options: TcpOptions {
            mss: Some(sig.mss),
            window_scale: Some(7),
            sack_permitted: sig.layout.contains("sok"),
            timestamps: sig.layout.contains("ts"),
            layout: sig.layout,
        },
        payload: bcd_netsim::Payload::empty(),
    }
}

/// The signature database + matcher.
#[derive(Debug, Default)]
pub struct P0fClassifier;

impl P0fClassifier {
    /// A classifier with the built-in database.
    pub fn new() -> P0fClassifier {
        P0fClassifier
    }

    /// Round an observed TTL up to the nearest common initial TTL.
    pub fn infer_initial_ttl(observed: u8) -> u8 {
        for initial in [32u8, 64, 128, 255] {
            if observed <= initial {
                return initial;
            }
        }
        255
    }

    /// Classify from an observed SYN: `observed_ttl` is the TTL at the
    /// capture point (initial minus path hops).
    pub fn classify_syn(&self, observed_ttl: u8, seg: &TcpSegment) -> P0fClass {
        let ittl = Self::infer_initial_ttl(observed_ttl);
        let sig = TcpSignature {
            ittl,
            window: seg.window,
            mss: seg.options.mss.unwrap_or(0),
            layout: "", // layout matched separately below (not hashable from seg)
        };
        self.classify_fields(sig.ittl, sig.window, sig.mss, seg.options.layout)
    }

    /// Classify from raw fields.
    pub fn classify_fields(&self, ittl: u8, window: u16, mss: u16, layout: &str) -> P0fClass {
        match (ittl, window, mss, layout) {
            (64, 29_200, 1_460, "mss,sok,ts,nop,ws") => P0fClass::Linux,
            (64, 65_535, 1_460, "mss,nop,ws,sok,ts") => P0fClass::FreeBsd,
            (128, 8_192, 1_460, "mss,nop,ws,nop,nop,sok") => P0fClass::Windows,
            (128, 65_535, 1_460, "mss,nop,nop,sok") => P0fClass::Windows,
            (64, 14_600, 1_424, "mss,sok,ts,nop,ws") => P0fClass::BaiduSpider,
            _ => P0fClass::Unknown,
        }
    }

    /// Classify a known-OS signature (used by lab tests).
    pub fn classify_signature(&self, sig: TcpSignature) -> P0fClass {
        self.classify_fields(sig.ittl, sig.window, sig.mss, sig.layout)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_os_signature_classifies_to_its_family() {
        let c = P0fClassifier::new();
        assert_eq!(
            c.classify_signature(Os::LinuxModern.syn_signature()),
            P0fClass::Linux
        );
        assert_eq!(
            c.classify_signature(Os::LinuxOld.syn_signature()),
            P0fClass::Linux
        );
        assert_eq!(
            c.classify_signature(Os::FreeBsd.syn_signature()),
            P0fClass::FreeBsd
        );
        assert_eq!(
            c.classify_signature(Os::WindowsModern.syn_signature()),
            P0fClass::Windows
        );
        assert_eq!(
            c.classify_signature(Os::Windows2008.syn_signature()),
            P0fClass::Windows
        );
        assert_eq!(
            c.classify_signature(Os::Windows2003.syn_signature()),
            P0fClass::Windows
        );
        assert_eq!(
            c.classify_signature(Os::BaiduCrawler.syn_signature()),
            P0fClass::BaiduSpider
        );
    }

    #[test]
    fn generic_signature_is_unknown() {
        let c = P0fClassifier::new();
        assert_eq!(c.classify_signature(generic_signature()), P0fClass::Unknown);
    }

    #[test]
    fn ttl_inference_rounds_up() {
        assert_eq!(P0fClassifier::infer_initial_ttl(64), 64);
        assert_eq!(P0fClassifier::infer_initial_ttl(49), 64);
        assert_eq!(P0fClassifier::infer_initial_ttl(113), 128);
        assert_eq!(P0fClassifier::infer_initial_ttl(128), 128);
        assert_eq!(P0fClassifier::infer_initial_ttl(30), 32);
        assert_eq!(P0fClassifier::infer_initial_ttl(200), 255);
    }

    #[test]
    fn classify_syn_after_path_decay() {
        // A Windows SYN that crossed 17 hops still classifies as Windows.
        let c = P0fClassifier::new();
        let sig = Os::WindowsModern.syn_signature();
        let seg = syn_segment(sig, 50_123, 53, 1);
        assert_eq!(c.classify_syn(128 - 17, &seg), P0fClass::Windows);
        // A Linux SYN likewise.
        let sig = Os::LinuxModern.syn_signature();
        let seg = syn_segment(sig, 40_000, 53, 1);
        assert_eq!(c.classify_syn(64 - 9, &seg), P0fClass::Linux);
    }

    #[test]
    fn syn_segment_carries_options() {
        let seg = syn_segment(Os::LinuxModern.syn_signature(), 1234, 53, 42);
        assert!(seg.flags.syn && !seg.flags.ack);
        assert_eq!(seg.options.mss, Some(1_460));
        assert!(seg.options.sack_permitted);
        assert!(seg.options.timestamps);
        let seg_w = syn_segment(Os::WindowsModern.syn_signature(), 1, 2, 3);
        assert!(!seg_w.options.timestamps);
        assert!(seg_w.options.sack_permitted);
    }

    #[test]
    fn window_size_alone_is_not_enough() {
        // FreeBSD and Windows 2003 share window 65,535; TTL and layout
        // disambiguate.
        let c = P0fClassifier::new();
        assert_eq!(
            c.classify_fields(64, 65_535, 1_460, "mss,nop,ws,sok,ts"),
            P0fClass::FreeBsd
        );
        assert_eq!(
            c.classify_fields(128, 65_535, 1_460, "mss,nop,nop,sok"),
            P0fClass::Windows
        );
        assert_eq!(
            c.classify_fields(128, 65_535, 1_460, "mss,nop,ws,sok,ts"),
            P0fClass::Unknown
        );
    }
}
