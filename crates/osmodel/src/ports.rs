//! Ephemeral source-port allocation strategies.
//!
//! Every behaviour the paper observed in the wild or in its lab (Table 5,
//! §5.2.1, §5.2.3) is a [`PortAllocator`] variant:
//!
//! * a **fixed** single port (BIND < 8.1: port 53; BIND 8 / old Windows DNS:
//!   a random unprivileged port picked at startup; or an explicit
//!   `query-source port` configuration),
//! * a **small random set** (BIND 9.5.0: 8 ports selected at startup),
//! * a **sequential** counter in a small window that wraps (the §5.2.3
//!   "strictly increasing" resolvers with ranges 1–200),
//! * a **uniform pool** (Linux 32768–61000, FreeBSD IANA, full unprivileged
//!   range),
//! * the **Windows DNS pool**: 2,500 contiguous ports chosen at server
//!   startup inside the IANA range, wrapping from 65535 back to 49152.

use rand::Rng;

/// Bottom of the IANA dynamic/ephemeral range.
pub const IANA_LO: u16 = 49_152;
/// Top of the IANA dynamic/ephemeral range.
pub const IANA_HI: u16 = 65_535;
/// Size of the IANA range.
pub const IANA_SIZE: u32 = (IANA_HI - IANA_LO) as u32 + 1; // 16,384
/// Size of the Windows DNS (2008 R2+) startup-selected pool.
pub const WINDOWS_POOL_SIZE: u32 = 2_500;

/// A source-port allocation strategy with whatever per-instance state it
/// needs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PortAllocator {
    /// Always the same port.
    Fixed(u16),
    /// Uniform choice among a small fixed set (BIND 9.5.0's 8 ports).
    SmallSet(Vec<u16>),
    /// Strictly increasing within `[base, base + span - 1]`, wrapping to
    /// `base` (an "ineffective" allocator, §5.2.3).
    Sequential { base: u16, span: u16, next: u16 },
    /// Uniform over `size` contiguous ports starting at `lo`.
    Uniform { lo: u16, size: u32 },
    /// Windows DNS 2008 R2+: uniform over 2,500 contiguous ports starting
    /// at `start` within the IANA range, wrapping past 65535 to 49152.
    WindowsPool { start: u16 },
}

impl PortAllocator {
    /// A fixed-port allocator.
    pub fn fixed(port: u16) -> PortAllocator {
        PortAllocator::Fixed(port)
    }

    /// The classic BIND-on-port-53 configuration.
    pub fn port53() -> PortAllocator {
        PortAllocator::Fixed(53)
    }

    /// A random unprivileged fixed port, "selected at startup".
    pub fn fixed_unprivileged<R: Rng + ?Sized>(rng: &mut R) -> PortAllocator {
        PortAllocator::Fixed(rng.gen_range(1_024..=65_535))
    }

    /// BIND 9.5.0's startup-selected set of 8 unprivileged ports.
    pub fn small_set<R: Rng + ?Sized>(rng: &mut R, count: usize) -> PortAllocator {
        let mut ports = Vec::with_capacity(count);
        while ports.len() < count {
            let p = rng.gen_range(1_024..=65_535);
            if !ports.contains(&p) {
                ports.push(p);
            }
        }
        PortAllocator::SmallSet(ports)
    }

    /// A strictly increasing allocator over a window of `span` ports.
    pub fn sequential<R: Rng + ?Sized>(rng: &mut R, span: u16) -> PortAllocator {
        assert!(span >= 1);
        let base = rng.gen_range(1_024..=(65_535 - span));
        PortAllocator::Sequential {
            base,
            span,
            next: 0,
        }
    }

    /// Uniform over `size` ports starting at `lo` (inclusive).
    pub fn uniform(lo: u16, size: u32) -> PortAllocator {
        assert!(size >= 1);
        assert!(lo as u32 + size - 1 <= 65_535, "pool exceeds port space");
        PortAllocator::Uniform { lo, size }
    }

    /// A fresh Windows DNS pool with a startup-random starting port.
    pub fn windows_pool<R: Rng + ?Sized>(rng: &mut R) -> PortAllocator {
        PortAllocator::WindowsPool {
            start: rng.gen_range(IANA_LO..=IANA_HI),
        }
    }

    /// Number of distinct ports this allocator can produce.
    pub fn pool_size(&self) -> u32 {
        match self {
            PortAllocator::Fixed(_) => 1,
            PortAllocator::SmallSet(ports) => ports.len() as u32,
            PortAllocator::Sequential { span, .. } => *span as u32,
            PortAllocator::Uniform { size, .. } => *size,
            PortAllocator::WindowsPool { .. } => WINDOWS_POOL_SIZE,
        }
    }

    /// Draw the next source port.
    pub fn next_port<R: Rng + ?Sized>(&mut self, rng: &mut R) -> u16 {
        match self {
            PortAllocator::Fixed(p) => *p,
            PortAllocator::SmallSet(ports) => ports[rng.gen_range(0..ports.len())],
            PortAllocator::Sequential { base, span, next } => {
                let port = *base + *next;
                *next = (*next + 1) % *span;
                port
            }
            PortAllocator::Uniform { lo, size } => (*lo as u32 + rng.gen_range(0..*size)) as u16,
            PortAllocator::WindowsPool { start } => {
                let start_off = (*start - IANA_LO) as u32;
                let off = (start_off + rng.gen_range(0..WINDOWS_POOL_SIZE)) % IANA_SIZE;
                (IANA_LO as u32 + off) as u16
            }
        }
    }

    /// True if the Windows pool wraps past the top of the IANA range
    /// (relevant to the paper's range-adjustment algorithm, §5.3.2).
    pub fn windows_pool_wraps(&self) -> bool {
        match self {
            PortAllocator::WindowsPool { start } => {
                (*start as u32 - IANA_LO as u32) + WINDOWS_POOL_SIZE > IANA_SIZE
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;
    use std::collections::HashSet;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(99)
    }

    #[test]
    fn fixed_never_varies() {
        let mut r = rng();
        let mut a = PortAllocator::port53();
        for _ in 0..100 {
            assert_eq!(a.next_port(&mut r), 53);
        }
        assert_eq!(a.pool_size(), 1);
    }

    #[test]
    fn fixed_unprivileged_is_above_1023() {
        let mut r = rng();
        for _ in 0..50 {
            let a = PortAllocator::fixed_unprivileged(&mut r);
            if let PortAllocator::Fixed(p) = a {
                assert!(p > 1_023);
            } else {
                unreachable!()
            }
        }
    }

    #[test]
    fn small_set_uses_only_its_ports() {
        let mut r = rng();
        let mut a = PortAllocator::small_set(&mut r, 8);
        let allowed: HashSet<u16> = match &a {
            PortAllocator::SmallSet(p) => p.iter().copied().collect(),
            _ => unreachable!(),
        };
        assert_eq!(allowed.len(), 8);
        let mut seen = HashSet::new();
        for _ in 0..1_000 {
            let p = a.next_port(&mut r);
            assert!(allowed.contains(&p));
            seen.insert(p);
        }
        assert_eq!(seen.len(), 8, "all 8 ports should appear in 1000 draws");
    }

    #[test]
    fn sequential_increases_then_wraps() {
        let mut r = rng();
        let mut a = PortAllocator::sequential(&mut r, 5);
        let first: Vec<u16> = (0..5).map(|_| a.next_port(&mut r)).collect();
        for w in first.windows(2) {
            assert_eq!(w[1], w[0] + 1, "strictly increasing");
        }
        // Sixth draw wraps to the base.
        assert_eq!(a.next_port(&mut r), first[0]);
        assert_eq!(a.pool_size(), 5);
    }

    #[test]
    fn uniform_respects_bounds_and_covers() {
        let mut r = rng();
        let mut a = PortAllocator::uniform(32_768, 28_232);
        let mut min = u16::MAX;
        let mut max = 0;
        for _ in 0..50_000 {
            let p = a.next_port(&mut r);
            assert!((32_768..=32_768 + 28_231).contains(&(p as u32)));
            min = min.min(p);
            max = max.max(p);
        }
        // With 50k draws from 28k ports, extremes are essentially reached.
        assert!(min <= 32_770, "min = {min}");
        assert!(max as u32 >= 32_768 + 28_229, "max = {max}");
    }

    #[test]
    #[should_panic(expected = "pool exceeds port space")]
    fn uniform_rejects_overflow() {
        let _ = PortAllocator::uniform(60_000, 10_000);
    }

    #[test]
    fn windows_pool_is_contiguous_modulo_wrap() {
        let mut r = rng();
        // Force a wrapping pool: start within 2,499 of the top.
        let mut a = PortAllocator::WindowsPool { start: 65_000 };
        assert!(a.windows_pool_wraps());
        let mut low_part = false;
        let mut high_part = false;
        for _ in 0..10_000 {
            let p = a.next_port(&mut r);
            assert!((IANA_LO..=IANA_HI).contains(&p));
            if p >= 65_000 {
                high_part = true;
            } else {
                // Wrapped region: 49152..49152+(2500-(65535-65000+1))
                assert!(p < IANA_LO + (WINDOWS_POOL_SIZE - 536) as u16);
                low_part = true;
            }
        }
        assert!(low_part && high_part, "both wrap regions must be used");
    }

    #[test]
    fn windows_pool_no_wrap_case() {
        let mut r = rng();
        let mut a = PortAllocator::WindowsPool { start: 50_000 };
        assert!(!a.windows_pool_wraps());
        for _ in 0..5_000 {
            let p = a.next_port(&mut r) as u32;
            assert!((50_000..50_000 + WINDOWS_POOL_SIZE).contains(&p));
        }
    }

    #[test]
    fn windows_pool_has_2500_distinct_ports() {
        let mut r = rng();
        let mut a = PortAllocator::windows_pool(&mut r);
        let mut seen = HashSet::new();
        for _ in 0..100_000 {
            seen.insert(a.next_port(&mut r));
        }
        // Coupon collector: 100k draws from 2500 ports covers all of them
        // with overwhelming probability.
        assert_eq!(seen.len(), WINDOWS_POOL_SIZE as usize);
    }

    #[test]
    fn observed_range_tracks_pool_size() {
        // 10-draw ranges from each pool should land near (n-1)/(n+1)·s —
        // the paper's Beta(9,2) mode/mean neighbourhood.
        let mut r = rng();
        for (alloc, size) in [
            (PortAllocator::uniform(32_768, 28_232), 28_232u32),
            (PortAllocator::uniform(49_152, 16_383), 16_383),
            (PortAllocator::uniform(1_024, 64_511), 64_511),
        ] {
            let mut a = alloc;
            let mut ranges = Vec::new();
            for _ in 0..500 {
                let ports: Vec<u16> = (0..10).map(|_| a.next_port(&mut r)).collect();
                let mn = *ports.iter().min().unwrap() as i64;
                let mx = *ports.iter().max().unwrap() as i64;
                ranges.push((mx - mn) as f64);
            }
            let mean = ranges.iter().sum::<f64>() / ranges.len() as f64;
            let expect = 9.0 / 11.0 * size as f64;
            assert!(
                (mean - expect).abs() / expect < 0.05,
                "pool {size}: mean {mean}, expect {expect}"
            );
        }
    }
}
