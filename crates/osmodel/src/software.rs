//! DNS resolver software profiles and their default source-port behaviour —
//! the paper's Table 5, reproduced exactly.
//!
//! | Software                          | Source port pool (default)         |
//! |-----------------------------------|------------------------------------|
//! | BIND 9.5.0                        | 8 ports, selected at startup       |
//! | BIND 9.5.2–9.8.8                  | 1024–65535                         |
//! | BIND 9.9.13–9.16.0                | OS defaults                        |
//! | Knot Resolver 3.2.1               | OS defaults                        |
//! | Unbound 1.9.0                     | 1024–65535                         |
//! | PowerDNS Recursor 4.2.0           | 1024–65535                         |
//! | Windows DNS 2003/2003 R2/2008     | 1 port, > 1023, selected at startup|
//! | Windows DNS 2008 R2–2019          | 2,500 contiguous ports (wrapping)  |
//!
//! Plus the misconfiguration/antique profiles §5.2.1 found in the wild:
//! a fixed `query-source port 53` (34% of zero-range resolvers), other fixed
//! ports (32768 was 12%), and sequential small-window allocators (§5.2.3).

use crate::os::Os;
use crate::ports::PortAllocator;
use rand::Rng;
use std::fmt;

/// DNS software (and configuration) profiles relevant to source-port
/// behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum DnsSoftware {
    /// BIND 9.5.0: 8 startup-selected ports.
    Bind950,
    /// BIND 9.5.2 through 9.8.8: full unprivileged range.
    Bind952To988,
    /// BIND 9.9.13 through 9.16.0: defers to the OS pool.
    Bind99Plus,
    /// Knot Resolver 3.2.1: defers to the OS pool.
    Knot32,
    /// Unbound 1.9.0: full unprivileged range.
    Unbound19,
    /// PowerDNS Recursor 4.2.0: full unprivileged range.
    PowerDns42,
    /// Windows DNS on 2003 / 2003 R2 / 2008: one unprivileged port chosen
    /// at startup.
    WindowsDnsOld,
    /// Windows DNS on 2008 R2+: the 2,500-port wrapping pool.
    WindowsDnsModern,
    /// Any software explicitly configured with `query-source port 53`
    /// (or BIND < 8.1 defaults).
    FixedPort53,
    /// Any software pinned to a non-53 port (BIND 8 default behaviour, or
    /// explicit configuration; 32768/32769 were common in the wild).
    FixedPortOther,
    /// An "ineffective" allocator: strictly increasing over a small window
    /// (§5.2.3's 1–200-range resolvers, 65% of which increased strictly).
    SequentialSmall,
}

impl DnsSoftware {
    /// All profiles, for lab sweeps (Table 5 regeneration).
    pub const ALL: [DnsSoftware; 11] = [
        DnsSoftware::Bind950,
        DnsSoftware::Bind952To988,
        DnsSoftware::Bind99Plus,
        DnsSoftware::Knot32,
        DnsSoftware::Unbound19,
        DnsSoftware::PowerDns42,
        DnsSoftware::WindowsDnsOld,
        DnsSoftware::WindowsDnsModern,
        DnsSoftware::FixedPort53,
        DnsSoftware::FixedPortOther,
        DnsSoftware::SequentialSmall,
    ];

    /// Instantiate the allocator this software uses on the given OS.
    /// Startup randomness (fixed-port choice, pool start, the 8-port set)
    /// comes from `rng`, exactly once per server instance — matching the
    /// paper's "selected at startup" observations.
    pub fn allocator<R: Rng + ?Sized>(self, os: Os, rng: &mut R) -> PortAllocator {
        match self {
            DnsSoftware::Bind950 => PortAllocator::small_set(rng, 8),
            DnsSoftware::Bind952To988 | DnsSoftware::Unbound19 | DnsSoftware::PowerDns42 => {
                PortAllocator::uniform(1_024, 64_511)
            }
            DnsSoftware::Bind99Plus | DnsSoftware::Knot32 => os.default_port_allocator(),
            DnsSoftware::WindowsDnsOld => PortAllocator::fixed_unprivileged(rng),
            DnsSoftware::WindowsDnsModern => PortAllocator::windows_pool(rng),
            DnsSoftware::FixedPort53 => PortAllocator::port53(),
            DnsSoftware::FixedPortOther => {
                // The wild population clusters on 32768/32769 (paper: 12%
                // and 3.8% of single-port resolvers) with a tail of other
                // startup-selected ports.
                let roll: f64 = rng.gen();
                if roll < 0.4 {
                    PortAllocator::fixed(32_768)
                } else if roll < 0.55 {
                    PortAllocator::fixed(32_769)
                } else {
                    PortAllocator::fixed_unprivileged(rng)
                }
            }
            DnsSoftware::SequentialSmall => {
                // Window widths 2..=200 per §5.2.3's observed 1–200 ranges.
                let span = rng.gen_range(2..=200);
                PortAllocator::sequential(rng, span)
            }
        }
    }

    /// The Table 5 "Source Port Pool (default)" cell, as text.
    pub fn pool_description(self) -> &'static str {
        match self {
            DnsSoftware::Bind950 => "8 ports, selected at startup",
            DnsSoftware::Bind952To988 => "1024-65535",
            DnsSoftware::Bind99Plus => "OS defaults",
            DnsSoftware::Knot32 => "OS defaults",
            DnsSoftware::Unbound19 => "1024-65535",
            DnsSoftware::PowerDns42 => "1024-65535",
            DnsSoftware::WindowsDnsOld => "1 port, > 1023, selected at startup",
            DnsSoftware::WindowsDnsModern => {
                "2,500 contiguous ports (with wrapping), selected at startup"
            }
            DnsSoftware::FixedPort53 => "port 53 (query-source configuration)",
            DnsSoftware::FixedPortOther => "1 fixed unprivileged port (configuration)",
            DnsSoftware::SequentialSmall => "sequential small window (misconfiguration)",
        }
    }

    /// True if this profile has *no* source-port randomization (range 0) —
    /// the §5.2.1 vulnerable class.
    pub fn is_single_port(self) -> bool {
        matches!(
            self,
            DnsSoftware::WindowsDnsOld | DnsSoftware::FixedPort53 | DnsSoftware::FixedPortOther
        )
    }
}

impl fmt::Display for DnsSoftware {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DnsSoftware::Bind950 => "BIND 9.5.0",
            DnsSoftware::Bind952To988 => "BIND 9.5.2-9.8.8",
            DnsSoftware::Bind99Plus => "BIND 9.9.13-9.16.0",
            DnsSoftware::Knot32 => "Knot Resolver 3.2.1",
            DnsSoftware::Unbound19 => "Unbound 1.9.0",
            DnsSoftware::PowerDns42 => "PowerDNS Rec. 4.2.0",
            DnsSoftware::WindowsDnsOld => "Windows DNS 2003, 2003 R2, 2008",
            DnsSoftware::WindowsDnsModern => "Windows DNS 2008 R2, 2012, 2012 R2, 2016, 2019",
            DnsSoftware::FixedPort53 => "fixed query-source port 53",
            DnsSoftware::FixedPortOther => "fixed unprivileged query-source port",
            DnsSoftware::SequentialSmall => "sequential small-pool allocator",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(5)
    }

    /// Reproduce Table 5: instantiate each profile and check its pool size.
    #[test]
    fn table5_pool_sizes() {
        let mut r = rng();
        let cases: [(DnsSoftware, u32); 8] = [
            (DnsSoftware::Bind950, 8),
            (DnsSoftware::Bind952To988, 64_511),
            (DnsSoftware::Knot32, 28_232), // on Linux
            (DnsSoftware::Unbound19, 64_511),
            (DnsSoftware::PowerDns42, 64_511),
            (DnsSoftware::WindowsDnsOld, 1),
            (DnsSoftware::WindowsDnsModern, 2_500),
            (DnsSoftware::FixedPort53, 1),
        ];
        for (sw, size) in cases {
            let os = if sw == DnsSoftware::WindowsDnsOld || sw == DnsSoftware::WindowsDnsModern {
                Os::WindowsModern
            } else {
                Os::LinuxModern
            };
            assert_eq!(sw.allocator(os, &mut r).pool_size(), size, "{sw}");
        }
    }

    #[test]
    fn bind99_follows_the_os() {
        let mut r = rng();
        assert_eq!(
            DnsSoftware::Bind99Plus
                .allocator(Os::LinuxModern, &mut r)
                .pool_size(),
            28_232
        );
        assert_eq!(
            DnsSoftware::Bind99Plus
                .allocator(Os::FreeBsd, &mut r)
                .pool_size(),
            16_383
        );
        // The paper's §5.3.2 caveat: BIND on Windows uses the full
        // unprivileged range, so Windows is only identifiable when running
        // Windows DNS itself.
        assert_eq!(
            DnsSoftware::Bind99Plus
                .allocator(Os::WindowsModern, &mut r)
                .pool_size(),
            64_511
        );
    }

    #[test]
    fn single_port_classification() {
        assert!(DnsSoftware::FixedPort53.is_single_port());
        assert!(DnsSoftware::WindowsDnsOld.is_single_port());
        assert!(!DnsSoftware::WindowsDnsModern.is_single_port());
        assert!(!DnsSoftware::Bind99Plus.is_single_port());
    }

    #[test]
    fn fixed_port_other_clusters_on_32768() {
        let mut r = rng();
        let mut hits_32768 = 0;
        for _ in 0..1_000 {
            if let PortAllocator::Fixed(p) =
                DnsSoftware::FixedPortOther.allocator(Os::LinuxModern, &mut r)
            {
                if p == 32_768 {
                    hits_32768 += 1;
                }
                assert!(p > 1_023);
            } else {
                unreachable!()
            }
        }
        assert!((300..500).contains(&hits_32768), "{hits_32768}");
    }

    #[test]
    fn sequential_small_stays_in_window() {
        let mut r = rng();
        for _ in 0..20 {
            let mut a = DnsSoftware::SequentialSmall.allocator(Os::LinuxModern, &mut r);
            let span = a.pool_size();
            assert!((2..=200).contains(&span));
            let ports: Vec<u16> = (0..10).map(|_| a.next_port(&mut r)).collect();
            let mn = *ports.iter().min().unwrap();
            let mx = *ports.iter().max().unwrap();
            assert!(((mx - mn) as u32) < span);
        }
    }
}
