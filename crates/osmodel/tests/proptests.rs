//! Property tests for port allocators: every strategy stays inside its
//! declared pool, for arbitrary seeds and draw counts.

use bcd_osmodel::ports::{IANA_HI, IANA_LO, WINDOWS_POOL_SIZE};
use bcd_osmodel::{DnsSoftware, Os, PortAllocator};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn all_software() -> impl Strategy<Value = DnsSoftware> {
    prop::sample::select(DnsSoftware::ALL.to_vec())
}

fn all_os() -> impl Strategy<Value = Os> {
    prop::sample::select(Os::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The number of distinct ports ever drawn never exceeds the declared
    /// pool size, and no port is privileged unless explicitly configured.
    #[test]
    fn allocator_respects_declared_pool(
        sw in all_software(),
        os in all_os(),
        seed in any::<u64>(),
        draws in 1usize..300,
    ) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut alloc = sw.allocator(os, &mut rng);
        let declared = alloc.pool_size();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..draws {
            let p = alloc.next_port(&mut rng);
            seen.insert(p);
            // Only explicit fixed-53 configurations may use a privileged
            // port.
            if sw != DnsSoftware::FixedPort53 {
                prop_assert!(p > 1_023, "{sw} on {os} drew privileged port {p}");
            }
        }
        prop_assert!(seen.len() as u32 <= declared);
        // Single-port profiles really are single-port.
        if sw.is_single_port() {
            prop_assert_eq!(seen.len(), 1);
        }
    }

    /// The Windows pool is exactly 2,500 positions inside the IANA range,
    /// contiguous modulo the wrap.
    #[test]
    fn windows_pool_geometry(start in IANA_LO..=IANA_HI, seed in any::<u64>(), draws in 10usize..500) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut alloc = PortAllocator::WindowsPool { start };
        for _ in 0..draws {
            let p = alloc.next_port(&mut rng);
            prop_assert!((IANA_LO..=IANA_HI).contains(&p));
            // Offset from the pool start, modulo the IANA ring, is < 2,500.
            let ring = (p as u32 + 65_536 - start as u32) % 16_384;
            prop_assert!(ring < WINDOWS_POOL_SIZE, "port {p} outside pool from {start}");
        }
    }

    /// Sequential allocators emit a wrap-free increasing run of exactly the
    /// span length.
    #[test]
    fn sequential_cycles(seed in any::<u64>(), span in 2u16..200) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut alloc = PortAllocator::sequential(&mut rng, span);
        let first: Vec<u16> = (0..span).map(|_| alloc.next_port(&mut rng)).collect();
        for w in first.windows(2) {
            prop_assert_eq!(w[1], w[0] + 1);
        }
        // The next draw wraps to the base.
        prop_assert_eq!(alloc.next_port(&mut rng), first[0]);
    }
}
