//! The Beta(α, β) distribution.
//!
//! The paper's model (§5.3.2): given `n` source ports drawn uniformly from a
//! pool, the sample range divided by the pool size is approximately
//! `Beta(n-1, 2)` distributed — for the 10 follow-up queries, `Beta(9, 2)`.
//! The figures overlay this density on the empirical histograms; Table 4's
//! cutoffs integrate its tails.

use crate::gamma::ln_beta;

/// A Beta(α, β) distribution over `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Beta {
    pub alpha: f64,
    pub beta: f64,
    ln_b: f64,
}

impl Beta {
    /// Construct; panics on non-positive parameters.
    pub fn new(alpha: f64, beta: f64) -> Beta {
        assert!(
            alpha > 0.0 && beta > 0.0,
            "Beta parameters must be positive"
        );
        Beta {
            alpha,
            beta,
            ln_b: ln_beta(alpha, beta),
        }
    }

    /// The paper's range model for `n` uniform draws: `Beta(n-1, 2)`.
    pub fn range_model(n: u32) -> Beta {
        assert!(n >= 2, "range of fewer than 2 draws is degenerate");
        Beta::new(n as f64 - 1.0, 2.0)
    }

    /// Probability density at `x ∈ [0, 1]`.
    pub fn pdf(&self, x: f64) -> f64 {
        if !(0.0..=1.0).contains(&x) {
            return 0.0;
        }
        if x == 0.0 {
            return if self.alpha < 1.0 {
                f64::INFINITY
            } else if self.alpha == 1.0 {
                (-self.ln_b).exp()
            } else {
                0.0
            };
        }
        if x == 1.0 {
            return if self.beta < 1.0 {
                f64::INFINITY
            } else if self.beta == 1.0 {
                (-self.ln_b).exp()
            } else {
                0.0
            };
        }
        ((self.alpha - 1.0) * x.ln() + (self.beta - 1.0) * (1.0 - x).ln() - self.ln_b).exp()
    }

    /// Cumulative distribution function: the regularized incomplete beta
    /// `I_x(α, β)`.
    pub fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        if x >= 1.0 {
            return 1.0;
        }
        reg_inc_beta(self.alpha, self.beta, x)
    }

    /// Upper-tail probability `P(X > x)`.
    pub fn sf(&self, x: f64) -> f64 {
        1.0 - self.cdf(x)
    }

    /// Quantile (inverse CDF) by bisection — plenty for reporting.
    pub fn quantile(&self, p: f64) -> f64 {
        assert!((0.0..=1.0).contains(&p), "quantile domain is [0,1]");
        if p == 0.0 {
            return 0.0;
        }
        if p == 1.0 {
            return 1.0;
        }
        let (mut lo, mut hi) = (0.0f64, 1.0f64);
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < p {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        0.5 * (lo + hi)
    }

    /// Mean α / (α + β).
    pub fn mean(&self) -> f64 {
        self.alpha / (self.alpha + self.beta)
    }

    /// Mode (α-1)/(α+β-2) for α, β > 1.
    pub fn mode(&self) -> f64 {
        (self.alpha - 1.0) / (self.alpha + self.beta - 2.0)
    }

    /// Variance αβ / ((α+β)²(α+β+1)).
    pub fn variance(&self) -> f64 {
        let s = self.alpha + self.beta;
        self.alpha * self.beta / (s * s * (s + 1.0))
    }
}

/// Regularized incomplete beta via the Lentz continued fraction
/// (Numerical Recipes `betai`/`betacf`).
fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    let ln_front = a * x.ln() + b * (1.0 - x).ln() - ln_beta(a, b);
    let front = ln_front.exp();
    // Use the symmetry transform for faster convergence.
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - (-ln_beta(a, b) + b * (1.0 - x).ln() + a * x.ln()).exp() * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 300;
    const EPS: f64 = 1e-14;
    const FPMIN: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0f64;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        // Even step.
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        // Odd step.
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    #[test]
    fn uniform_special_case() {
        // Beta(1,1) is Uniform(0,1).
        let u = Beta::new(1.0, 1.0);
        assert!(close(u.pdf(0.3), 1.0, 1e-12));
        assert!(close(u.cdf(0.3), 0.3, 1e-12));
        assert!(close(u.quantile(0.77), 0.77, 1e-9));
    }

    #[test]
    fn beta_2_2_closed_form() {
        // Beta(2,2): pdf = 6x(1-x), cdf = 3x² - 2x³.
        let b = Beta::new(2.0, 2.0);
        for x in [0.1, 0.25, 0.5, 0.75, 0.9] {
            assert!(close(b.pdf(x), 6.0 * x * (1.0 - x), 1e-10), "pdf({x})");
            assert!(
                close(b.cdf(x), 3.0 * x * x - 2.0 * x * x * x, 1e-10),
                "cdf({x})"
            );
        }
    }

    #[test]
    fn range_model_beta_9_2() {
        // cdf of Beta(9,2) at x: P = x^9 (10 - 9x)  [since I_x(9,2) has a
        // closed form: 10x^9 - 9x^10].
        let b = Beta::range_model(10);
        assert_eq!(b.alpha, 9.0);
        assert_eq!(b.beta, 2.0);
        for x in [0.2f64, 0.5, 0.8, 0.95, 0.99] {
            let exact = 10.0 * x.powi(9) - 9.0 * x.powi(10);
            assert!(close(b.cdf(x), exact, 1e-10), "cdf({x})");
        }
        // Mode at (9-1)/(9+2-2) = 8/9 ≈ 0.889: ranges cluster near pool size.
        assert!(close(b.mode(), 8.0 / 9.0, 1e-12));
        assert!(close(b.mean(), 9.0 / 11.0, 1e-12));
    }

    #[test]
    fn cdf_is_monotone_and_bounded() {
        let b = Beta::new(9.0, 2.0);
        let mut prev = 0.0;
        for i in 0..=100 {
            let x = i as f64 / 100.0;
            let c = b.cdf(x);
            assert!((0.0..=1.0).contains(&c));
            assert!(c >= prev - 1e-12, "cdf not monotone at {x}");
            prev = c;
        }
        assert!(close(b.cdf(1.0), 1.0, 1e-12));
        assert_eq!(b.cdf(-0.5), 0.0);
        assert_eq!(b.cdf(1.5), 1.0);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let b = Beta::new(9.0, 2.0);
        for p in [0.01, 0.1, 0.5, 0.9, 0.999] {
            let x = b.quantile(p);
            assert!(close(b.cdf(x), p, 1e-9), "p={p}");
        }
    }

    #[test]
    fn variance_formula() {
        let b = Beta::new(9.0, 2.0);
        assert!(close(b.variance(), 9.0 * 2.0 / (11.0 * 11.0 * 12.0), 1e-12));
    }

    #[test]
    fn pdf_edge_behaviour() {
        let b = Beta::new(9.0, 2.0);
        assert_eq!(b.pdf(0.0), 0.0);
        assert_eq!(b.pdf(1.0), 0.0);
        assert_eq!(b.pdf(-0.1), 0.0);
        assert_eq!(b.pdf(1.1), 0.0);
        let u = Beta::new(1.0, 1.0);
        assert!(close(u.pdf(0.0), 1.0, 1e-12));
        assert!(close(u.pdf(1.0), 1.0, 1e-12));
    }
}
