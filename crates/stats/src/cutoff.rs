//! Minimum-misclassification cutoffs between two range distributions.
//!
//! Table 4's OS bands are separated by integer cutoffs: a resolver whose
//! observed 10-query port range falls below the cutoff is attributed to the
//! smaller pool. The paper optimizes each cutoff to minimize the total
//! misclassification probability (e.g. 0.05% of FreeBSD + 3.5% of Linux at
//! cutoff 16,331) or to achieve a one-sided accuracy target (99.9%).

use crate::range::RangeDistribution;

/// Result of a cutoff optimization between a smaller pool `a` and a larger
/// pool `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Cutoff {
    /// Ranges `≤ cutoff` are classified as pool `a`; ranges `> cutoff` as
    /// pool `b`.
    pub cutoff: u32,
    /// Probability a true-`a` sample is misclassified (`P_a(R > cutoff)`).
    pub miss_a: f64,
    /// Probability a true-`b` sample is misclassified (`P_b(R ≤ cutoff)`).
    pub miss_b: f64,
}

/// Find the integer cutoff minimizing `w_a · P_a(R > c) + w_b · P_b(R ≤ c)`
/// between two pools sampled with the same number of draws. `a` must be the
/// smaller pool. Weights default to 1 (the paper's symmetric optimization)
/// via [`optimal_cutoff`].
pub fn optimal_cutoff_weighted(
    a: RangeDistribution,
    b: RangeDistribution,
    w_a: f64,
    w_b: f64,
) -> Cutoff {
    assert!(a.pool <= b.pool, "a must be the smaller pool");
    assert_eq!(a.draws, b.draws, "cutoffs compare equal-sized samples");
    // The objective is unimodal in c (likelihood ratio is monotone), but a
    // linear scan over the candidate region is cheap and simplest. The
    // optimum must lie in [0, a.pool - 1]: above a's support the a-error is
    // zero and the b-error only grows.
    let mut best = Cutoff {
        cutoff: 0,
        miss_a: w_a * a.sf(0),
        miss_b: w_b * b.cdf(0),
    };
    let mut best_obj = best.miss_a + best.miss_b;
    for c in 1..a.pool {
        let miss_a = a.sf(c);
        let miss_b = b.cdf(c);
        let obj = w_a * miss_a + w_b * miss_b;
        if obj < best_obj {
            best_obj = obj;
            best = Cutoff {
                cutoff: c,
                miss_a,
                miss_b,
            };
        }
    }
    best
}

/// Symmetric (equal-weight) minimum-misclassification cutoff.
pub fn optimal_cutoff(a: RangeDistribution, b: RangeDistribution) -> Cutoff {
    optimal_cutoff_weighted(a, b, 1.0, 1.0)
}

/// Smallest cutoff such that at least `accuracy` of pool `a` samples fall at
/// or below it (one-sided band edge; the paper's "99.9% classification
/// accuracy" cutoffs below the Windows band and above the full range band).
pub fn accuracy_cutoff(a: RangeDistribution, accuracy: f64) -> u32 {
    a.quantile(accuracy)
}

/// Largest cutoff such that at most `1 - accuracy` of pool `b` samples fall
/// at or below it (lower band edge for the larger pool).
pub fn lower_accuracy_cutoff(b: RangeDistribution, accuracy: f64) -> u32 {
    let target = 1.0 - accuracy;
    // Largest c with cdf(c) ≤ target.
    let q = b.quantile(target);
    // quantile returns smallest c with cdf ≥ target; step down if strict.
    if b.cdf(q) > target && q > 0 {
        q - 1
    } else {
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_separates_well_separated_pools() {
        // Pools 100 vs 10_000: the optimum should sit just above pool a's
        // bulk, with tiny misclassification both ways.
        let a = RangeDistribution::new(100, 10);
        let b = RangeDistribution::new(10_000, 10);
        let c = optimal_cutoff(a, b);
        assert!(c.cutoff >= 90 && c.cutoff < 100, "cutoff = {}", c.cutoff);
        assert!(c.miss_a < 0.05);
        assert!(c.miss_b < 0.01);
    }

    #[test]
    fn paper_freebsd_linux_cutoff_region() {
        // FreeBSD pool 16,383 vs Linux pool 28,232 with 10 draws. The paper
        // reports cutoff 16,331 with 0.05% FreeBSD / 3.5% Linux
        // misclassified. Our exact-optimal cutoff should land close and the
        // error rates should be in the same regime.
        let fbsd = RangeDistribution::new(16_383, 10);
        let linux = RangeDistribution::new(28_232, 10);
        let c = optimal_cutoff(fbsd, linux);
        assert!(
            (15_800..=16_383).contains(&c.cutoff),
            "cutoff = {}",
            c.cutoff
        );
        assert!(c.miss_a < 0.01, "miss_a = {}", c.miss_a);
        assert!(c.miss_b < 0.06, "miss_b = {}", c.miss_b);
        // Evaluating at the paper's exact cutoff reproduces its two numbers.
        let miss_fbsd_paper = fbsd.sf(16_331);
        let miss_linux_paper = linux.cdf(16_331);
        assert!(miss_fbsd_paper < 0.002, "{miss_fbsd_paper}");
        assert!(
            (0.01..0.06).contains(&miss_linux_paper),
            "{miss_linux_paper}"
        );
    }

    #[test]
    fn paper_linux_fullrange_cutoff_region() {
        // Linux 28,232 vs full unprivileged range 64,511; paper cutoff
        // 28,222 with 0.35% collective misclassification.
        let linux = RangeDistribution::new(28_232, 10);
        let full = RangeDistribution::new(64_511, 10);
        let c = optimal_cutoff(linux, full);
        assert!(
            (27_500..=28_232).contains(&c.cutoff),
            "cutoff = {}",
            c.cutoff
        );
        assert!(
            c.miss_a + c.miss_b < 0.02,
            "total = {}",
            c.miss_a + c.miss_b
        );
    }

    #[test]
    fn weighted_cutoff_shifts_toward_protected_class() {
        let a = RangeDistribution::new(1_000, 10);
        let b = RangeDistribution::new(5_000, 10);
        let sym = optimal_cutoff(a, b);
        // Heavily penalizing a-misses pushes the cutoff up.
        let protect_a = optimal_cutoff_weighted(a, b, 100.0, 1.0);
        assert!(protect_a.cutoff >= sym.cutoff);
        // Heavily penalizing b-misses pushes it down.
        let protect_b = optimal_cutoff_weighted(a, b, 1.0, 100.0);
        assert!(protect_b.cutoff <= sym.cutoff);
    }

    #[test]
    fn accuracy_cutoffs_hit_target() {
        let w = RangeDistribution::new(2_500, 10);
        let hi = accuracy_cutoff(w, 0.999);
        assert!(w.cdf(hi) >= 0.999);
        assert!(hi < 2_500);
        let lo = lower_accuracy_cutoff(w, 0.999);
        assert!(w.cdf(lo) <= 0.001 + 1e-12);
    }

    #[test]
    #[should_panic(expected = "a must be the smaller pool")]
    fn pool_order_enforced() {
        let _ = optimal_cutoff(
            RangeDistribution::new(200, 10),
            RangeDistribution::new(100, 10),
        );
    }
}
