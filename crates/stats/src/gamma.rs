//! Log-gamma via the Lanczos approximation (g = 7, n = 9 coefficients).
//! Accurate to ~15 significant digits for positive arguments, which is far
//! more than the classification cutoffs need.

/// Lanczos coefficients for g = 7.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural log of the gamma function for `x > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula to keep the Lanczos series accurate.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Natural log of the Beta function `B(a, b)`.
pub fn ln_beta(a: f64, b: f64) -> f64 {
    ln_gamma(a) + ln_gamma(b) - ln_gamma(a + b)
}

/// Natural log of the binomial coefficient `C(n, k)`.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64, tol: f64) -> bool {
        (a - b).abs() <= tol * b.abs().max(1.0)
    }

    #[test]
    fn gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let facts: [f64; 8] = [1.0, 1.0, 2.0, 6.0, 24.0, 120.0, 720.0, 5040.0];
        for (i, f) in facts.iter().enumerate() {
            assert!(
                close(ln_gamma((i + 1) as f64), f.ln(), 1e-12),
                "Γ({}) mismatch",
                i + 1
            );
        }
    }

    #[test]
    fn gamma_half_integer() {
        // Γ(1/2) = √π
        assert!(close(ln_gamma(0.5), 0.5 * std::f64::consts::PI.ln(), 1e-12));
        // Γ(3/2) = √π / 2
        assert!(close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12
        ));
    }

    #[test]
    fn beta_function_identity() {
        // B(a, b) = Γ(a)Γ(b)/Γ(a+b); B(2, 3) = 1/12.
        assert!(close(ln_beta(2.0, 3.0), (1.0f64 / 12.0).ln(), 1e-12));
        // B(9, 2) = 8!·1!/10! = 1/90.
        assert!(close(ln_beta(9.0, 2.0), (1.0f64 / 90.0).ln(), 1e-12));
    }

    #[test]
    fn choose_small_values() {
        assert!(close(ln_choose(10, 3), 120.0f64.ln(), 1e-12));
        assert!(close(ln_choose(5, 0), 0.0, 1e-12));
        assert_eq!(ln_choose(3, 5), f64::NEG_INFINITY);
    }

    #[test]
    fn large_arguments_are_finite() {
        let v = ln_gamma(1e6);
        assert!(v.is_finite() && v > 0.0);
        // Stirling sanity: ln Γ(n) ≈ n ln n - n for large n.
        let n = 1e6f64;
        assert!(close(v, n * n.ln() - n, 1e-4));
    }
}
