//! Histograms, plain and stacked — the shapes behind Figures 2, 3a, 3b.
//!
//! Figure 2 is a stacked histogram of port ranges broken down by open/closed
//! resolver status; Figure 3b stacks by p0f classification. Both carry a
//! zoomed companion plot (0–3,000), which is just the same histogram
//! restricted — [`Histogram::slice`] provides that.

use std::collections::BTreeMap;

/// A fixed-bin-width histogram over `u32` values.
#[derive(Debug, Clone)]
pub struct Histogram {
    bin_width: u32,
    /// Total count per bin index.
    bins: BTreeMap<u32, u64>,
    total: u64,
}

impl Histogram {
    /// An empty histogram with the given bin width (≥ 1).
    pub fn new(bin_width: u32) -> Histogram {
        assert!(bin_width >= 1);
        Histogram {
            bin_width,
            bins: BTreeMap::new(),
            total: 0,
        }
    }

    /// Bin width.
    pub fn bin_width(&self) -> u32 {
        self.bin_width
    }

    /// Add one observation.
    pub fn add(&mut self, value: u32) {
        *self.bins.entry(value / self.bin_width).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in the bin containing `value`.
    pub fn count_at(&self, value: u32) -> u64 {
        self.bins
            .get(&(value / self.bin_width))
            .copied()
            .unwrap_or(0)
    }

    /// `(bin_start, count)` pairs in ascending order, non-empty bins only.
    pub fn bars(&self) -> impl Iterator<Item = (u32, u64)> + '_ {
        self.bins
            .iter()
            .map(move |(&b, &c)| (b * self.bin_width, c))
    }

    /// Restrict to values in `[lo, hi)` — the "zoomed" companion plots.
    pub fn slice(&self, lo: u32, hi: u32) -> Vec<(u32, u64)> {
        self.bars()
            .filter(|&(start, _)| start >= lo && start < hi)
            .collect()
    }

    /// The bin start with the highest count (ties: lowest bin), if any.
    pub fn mode_bin(&self) -> Option<(u32, u64)> {
        self.bars().max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
    }

    /// Render as fixed-width text bars — used by the figure binaries.
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.bars().map(|(_, c)| c).max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (start, count) in self.bars() {
            let w = ((count as f64 / peak as f64) * max_width as f64).round() as usize;
            out.push_str(&format!(
                "{:>8}..{:<8} {:>9} |{}\n",
                start,
                start + self.bin_width - 1,
                count,
                "#".repeat(w.max(if count > 0 { 1 } else { 0 }))
            ));
        }
        out
    }
}

/// A histogram whose bars are broken down by a category label (stacked bars).
#[derive(Debug, Clone)]
pub struct StackedHistogram {
    bin_width: u32,
    /// bin index → (category → count)
    bins: BTreeMap<u32, BTreeMap<&'static str, u64>>,
    total: u64,
}

impl StackedHistogram {
    /// An empty stacked histogram.
    pub fn new(bin_width: u32) -> StackedHistogram {
        assert!(bin_width >= 1);
        StackedHistogram {
            bin_width,
            bins: BTreeMap::new(),
            total: 0,
        }
    }

    /// Add one observation with its category.
    pub fn add(&mut self, value: u32, category: &'static str) {
        *self
            .bins
            .entry(value / self.bin_width)
            .or_default()
            .entry(category)
            .or_insert(0) += 1;
        self.total += 1;
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// All categories seen, sorted.
    pub fn categories(&self) -> Vec<&'static str> {
        let mut set: Vec<&'static str> =
            self.bins.values().flat_map(|m| m.keys().copied()).collect();
        set.sort_unstable();
        set.dedup();
        set
    }

    /// `(bin_start, total, per-category counts)` in ascending bin order.
    pub fn bars(&self) -> Vec<(u32, u64, BTreeMap<&'static str, u64>)> {
        self.bins
            .iter()
            .map(|(&b, m)| (b * self.bin_width, m.values().sum(), m.clone()))
            .collect()
    }

    /// Count of one category in the bin containing `value`.
    pub fn count_at(&self, value: u32, category: &str) -> u64 {
        self.bins
            .get(&(value / self.bin_width))
            .and_then(|m| m.get(category))
            .copied()
            .unwrap_or(0)
    }

    /// Collapse to a plain histogram (dropping the breakdown).
    pub fn flatten(&self) -> Histogram {
        let mut h = Histogram::new(self.bin_width);
        for (&bin, m) in &self.bins {
            let c: u64 = m.values().sum();
            for _ in 0..c {
                h.add(bin * self.bin_width);
            }
        }
        h
    }

    /// Render as text, one line per bin with the stacked breakdown.
    pub fn render(&self, max_width: usize) -> String {
        let cats = self.categories();
        let peak = self
            .bars()
            .iter()
            .map(|(_, t, _)| *t)
            .max()
            .unwrap_or(1)
            .max(1);
        let mut out = String::new();
        for (start, tot, m) in self.bars() {
            let w = ((tot as f64 / peak as f64) * max_width as f64).round() as usize;
            let breakdown: Vec<String> = cats
                .iter()
                .filter_map(|c| m.get(c).map(|n| format!("{c}={n}")))
                .collect();
            out.push_str(&format!(
                "{:>8}..{:<8} {:>9} |{} ({})\n",
                start,
                start + self.bin_width - 1,
                tot,
                "#".repeat(w.max(1)),
                breakdown.join(" ")
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(100);
        for v in [0, 50, 99, 100, 199, 65_535] {
            h.add(v);
        }
        assert_eq!(h.count_at(0), 3);
        assert_eq!(h.count_at(150), 2);
        assert_eq!(h.count_at(65_500), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bars_are_sorted_and_sliced() {
        let mut h = Histogram::new(10);
        h.add(5);
        h.add(95);
        h.add(45);
        let bars: Vec<_> = h.bars().collect();
        assert_eq!(bars, vec![(0, 1), (40, 1), (90, 1)]);
        assert_eq!(h.slice(0, 50), vec![(0, 1), (40, 1)]);
    }

    #[test]
    fn mode_bin_ties_prefer_lowest() {
        let mut h = Histogram::new(1);
        h.add(3);
        h.add(3);
        h.add(7);
        h.add(7);
        assert_eq!(h.mode_bin(), Some((3, 2)));
    }

    #[test]
    fn render_produces_a_line_per_bin() {
        let mut h = Histogram::new(10);
        h.add(1);
        h.add(11);
        let text = h.render(20);
        assert_eq!(text.lines().count(), 2);
        assert!(text.contains('#'));
    }

    #[test]
    fn stacked_tracks_categories() {
        let mut s = StackedHistogram::new(100);
        s.add(0, "open");
        s.add(0, "closed");
        s.add(0, "closed");
        s.add(500, "open");
        assert_eq!(s.count_at(50, "closed"), 2);
        assert_eq!(s.count_at(50, "open"), 1);
        assert_eq!(s.count_at(500, "closed"), 0);
        assert_eq!(s.categories(), vec!["closed", "open"]);
        assert_eq!(s.total(), 4);
        let bars = s.bars();
        assert_eq!(bars[0].1, 3);
        let flat = s.flatten();
        assert_eq!(flat.count_at(0), 3);
        assert!(s.render(10).contains("closed=2"));
    }
}
