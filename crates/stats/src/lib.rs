//! # bcd-stats — statistics for the port-range OS-identification model
//!
//! The paper's §5.3.2 models the *range* of 10 ephemeral source ports drawn
//! uniformly from an OS-specific pool: scaled by pool size, the range of
//! `n` uniform draws follows `Beta(n-1, 2)`. This crate provides:
//!
//! * [`beta`] — Beta(α, β) pdf / cdf / quantiles (Lanczos log-gamma +
//!   continued-fraction incomplete beta),
//! * [`range`] — the *exact discrete* distribution of the sample range of
//!   `n` draws from a pool of `s` ports, used both to cross-check the Beta
//!   approximation and to compute the classification cutoffs of Table 4,
//! * [`cutoff`] — minimum-misclassification cutoffs between two pools'
//!   range distributions (the paper's "0.05% of FreeBSD and 3.5% of Linux
//!   misclassified" optimization),
//! * [`occupancy`] — the probability of observing at most `k` distinct
//!   values in `n` draws from a pool of size `s` (the §5.2.3 "0.066%, or 1
//!   in 1,500" computation),
//! * [`hist`] — plain and stacked histograms used to render Figures 2/3,
//! * [`summary`] — means, medians, percentiles.

pub mod beta;
pub mod cutoff;
pub mod gamma;
pub mod hist;
pub mod occupancy;
pub mod range;
pub mod summary;

pub use beta::Beta;
pub use cutoff::optimal_cutoff;
pub use hist::{Histogram, StackedHistogram};
pub use range::RangeDistribution;
