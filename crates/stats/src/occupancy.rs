//! Occupancy probabilities: how many *distinct* values do `n` uniform draws
//! from a pool of `s` produce?
//!
//! §5.2.3 flags resolvers whose 10 follow-up queries used ≤ 7 unique ports
//! out of a claimed pool of ~200 — an event with probability 0.066% ("1 out
//! of every 1,500") under honest uniform selection. We compute it exactly:
//!
//! ```text
//! P(U = u) = C(s, u) · S(n, u) · u! / s^n
//! ```
//!
//! with `S(n, u)` the Stirling numbers of the second kind.

use crate::gamma::ln_choose;

/// Stirling numbers of the second kind `S(n, k)` for `n ≤ 64` as exact
/// f64-safe values computed by the triangular recurrence.
fn stirling2_row(n: u32) -> Vec<f64> {
    let n = n as usize;
    let mut row = vec![0.0f64; n + 1];
    row[0] = 1.0; // S(0,0) = 1
    for i in 1..=n {
        // Update in place right-to-left: S(i,k) = k·S(i-1,k) + S(i-1,k-1)
        let mut next = vec![0.0f64; n + 1];
        for k in 1..=i {
            next[k] = k as f64 * row[k] + row[k - 1];
        }
        row = next;
    }
    row
}

/// `P(U = unique)` for `draws` uniform draws from a pool of `pool` values.
pub fn exactly_unique(pool: u64, draws: u32, unique: u32) -> f64 {
    if unique == 0 {
        return if draws == 0 { 1.0 } else { 0.0 };
    }
    if unique as u64 > pool || unique > draws {
        return 0.0;
    }
    let s2 = stirling2_row(draws)[unique as usize];
    if s2 == 0.0 {
        return 0.0;
    }
    // ln[C(s,u) · u!] = ln_choose + ln Γ(u+1)
    let ln_term =
        ln_choose(pool, unique as u64) + crate::gamma::ln_gamma(unique as f64 + 1.0) + s2.ln()
            - draws as f64 * (pool as f64).ln();
    ln_term.exp()
}

/// `P(U ≤ unique)`.
pub fn at_most_unique(pool: u64, draws: u32, unique: u32) -> f64 {
    (0..=unique.min(draws))
        .map(|u| exactly_unique(pool, draws, u))
        .sum::<f64>()
        .clamp(0.0, 1.0)
}

/// The classic birthday-style collision probability: `P(U < draws)`, i.e. at
/// least one repeated value.
pub fn collision_probability(pool: u64, draws: u32) -> f64 {
    if draws as u64 > pool {
        return 1.0;
    }
    // 1 − s!/(s−n)!/s^n in log space.
    let mut ln_all_distinct = 0.0;
    for i in 0..draws as u64 {
        ln_all_distinct += ((pool - i) as f64).ln() - (pool as f64).ln();
    }
    1.0 - ln_all_distinct.exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn distribution_sums_to_one() {
        for (pool, draws) in [(10u64, 5u32), (200, 10), (65_536, 10)] {
            let total: f64 = (0..=draws).map(|u| exactly_unique(pool, draws, u)).sum();
            assert!(
                (total - 1.0).abs() < 1e-10,
                "pool {pool} draws {draws}: {total}"
            );
        }
    }

    #[test]
    fn tiny_case_matches_enumeration() {
        // pool 3, draws 3: P(U=1) = 3/27, P(U=2) = 18/27, P(U=3) = 6/27.
        assert!((exactly_unique(3, 3, 1) - 3.0 / 27.0).abs() < 1e-12);
        assert!((exactly_unique(3, 3, 2) - 18.0 / 27.0).abs() < 1e-12);
        assert!((exactly_unique(3, 3, 3) - 6.0 / 27.0).abs() < 1e-12);
    }

    #[test]
    fn paper_sevens_from_two_hundred() {
        // §5.2.3: ≤7 unique out of 10 draws from a pool of 200 happens
        // ~0.066% of the time ("1 out of every 1,500").
        let p = at_most_unique(200, 10, 7);
        assert!(
            (0.0005..0.0008).contains(&p),
            "P(U ≤ 7 | s=200, n=10) = {p}, expected ≈ 0.00066"
        );
        let one_in = 1.0 / p;
        assert!((1_300.0..1_700.0).contains(&one_in), "1 in {one_in:.0}");
    }

    #[test]
    fn birthday_paradox_checkpoint() {
        // 23 people, 365 days: P(collision) ≈ 0.5073.
        let p = collision_probability(365, 23);
        assert!((p - 0.5073).abs() < 0.0005, "{p}");
        assert_eq!(collision_probability(5, 6), 1.0);
        assert!(collision_probability(1_000_000, 2) < 1e-5);
    }

    #[test]
    fn collision_consistent_with_occupancy() {
        for (pool, draws) in [(50u64, 8u32), (200, 10)] {
            let via_occ = 1.0 - exactly_unique(pool, draws, draws);
            let direct = collision_probability(pool, draws);
            assert!((via_occ - direct).abs() < 1e-10);
        }
    }

    #[test]
    fn monte_carlo_agreement() {
        let (pool, draws) = (50u64, 10u32);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let trials = 40_000;
        let mut counts = vec![0u32; draws as usize + 1];
        for _ in 0..trials {
            let mut seen = std::collections::HashSet::new();
            for _ in 0..draws {
                seen.insert(rng.gen_range(0..pool));
            }
            counts[seen.len()] += 1;
        }
        for u in 5..=draws {
            let mc = counts[u as usize] as f64 / trials as f64;
            let exact = exactly_unique(pool, draws, u);
            assert!((mc - exact).abs() < 0.01, "u={u}: mc {mc} vs exact {exact}");
        }
    }

    #[test]
    fn edge_cases() {
        assert_eq!(exactly_unique(10, 0, 0), 1.0);
        assert_eq!(exactly_unique(10, 5, 0), 0.0);
        assert_eq!(exactly_unique(10, 5, 6), 0.0); // more unique than draws
        assert_eq!(exactly_unique(3, 5, 4), 0.0); // more unique than pool
        assert!((at_most_unique(10, 10, 10) - 1.0).abs() < 1e-10);
    }
}
