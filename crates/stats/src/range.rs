//! Exact discrete distribution of the sample range.
//!
//! For `n` i.i.d. draws, uniform on the integers `{0, …, s-1}` (a port pool
//! of size `s`), the range `R = max - min` has
//!
//! ```text
//! P(R ≤ r) = [ (s - r) · ((r+1)^n − r^n) + r^n ] / s^n ,   0 ≤ r ≤ s−1
//! ```
//!
//! derived by counting windows: for each possible minimum `m` with a full
//! `r+1`-wide window, `(r+1)^n − r^n` tuples have min exactly `m`; the
//! truncated windows at the top telescope to `r^n`.
//!
//! Computed in log space so pools up to the full 64k port range with n = 10
//! stay accurate.

/// Distribution of the range of `n` uniform draws from a pool of size `s`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RangeDistribution {
    /// Pool size (number of distinct ports), ≥ 1.
    pub pool: u32,
    /// Number of draws, ≥ 1.
    pub draws: u32,
}

impl RangeDistribution {
    /// Construct; panics on degenerate parameters.
    pub fn new(pool: u32, draws: u32) -> RangeDistribution {
        assert!(pool >= 1 && draws >= 1, "pool and draws must be positive");
        RangeDistribution { pool, draws }
    }

    /// `P(R ≤ r)`.
    pub fn cdf(&self, r: u32) -> f64 {
        let s = self.pool as f64;
        let n = self.draws as f64;
        if r >= self.pool - 1 || self.draws == 1 {
            // A single draw always has range 0.
            return 1.0;
        }
        let r = r as f64;
        // All terms scaled by s^n in log space: x^n / s^n = exp(n (ln x - ln s)).
        let pow = |x: f64| -> f64 {
            if x <= 0.0 {
                0.0
            } else {
                (n * (x.ln() - s.ln())).exp()
            }
        };
        ((s - r) * (pow(r + 1.0) - pow(r)) + pow(r)).clamp(0.0, 1.0)
    }

    /// `P(R = r)`.
    pub fn pmf(&self, r: u32) -> f64 {
        if r == 0 {
            self.cdf(0)
        } else if r >= self.pool {
            0.0
        } else {
            (self.cdf(r) - self.cdf(r - 1)).max(0.0)
        }
    }

    /// Upper tail `P(R > r)`.
    pub fn sf(&self, r: u32) -> f64 {
        1.0 - self.cdf(r)
    }

    /// Smallest `r` with `cdf(r) ≥ p`.
    pub fn quantile(&self, p: f64) -> u32 {
        assert!((0.0..=1.0).contains(&p));
        let (mut lo, mut hi) = (0u32, self.pool - 1);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.cdf(mid) >= p {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }

    /// Expected range (by summation of the survival function:
    /// `E[R] = Σ_{r≥0} P(R > r)`).
    pub fn mean(&self) -> f64 {
        let mut acc = 0.0;
        for r in 0..self.pool - 1 {
            let sf = self.sf(r);
            acc += sf;
            if sf < 1e-15 && r as f64 > self.mean_beta_estimate() {
                break;
            }
        }
        acc
    }

    /// The continuous Beta(n−1, 2) approximation of the mean, scaled by the
    /// pool: `(n−1)/(n+1) · s`.
    pub fn mean_beta_estimate(&self) -> f64 {
        let n = self.draws as f64;
        (n - 1.0) / (n + 1.0) * self.pool as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn tiny_cases_match_enumeration() {
        // Enumerate all tuples for small (s, n) and compare.
        for s in 1..=6u32 {
            for n in 1..=4u32 {
                let dist = RangeDistribution::new(s, n);
                let total = (s as u64).pow(n);
                let mut counts = vec![0u64; s as usize];
                for code in 0..total {
                    let mut c = code;
                    let mut mn = u32::MAX;
                    let mut mx = 0u32;
                    for _ in 0..n {
                        let v = (c % s as u64) as u32;
                        c /= s as u64;
                        mn = mn.min(v);
                        mx = mx.max(v);
                    }
                    counts[(mx - mn) as usize] += 1;
                }
                let mut cum = 0u64;
                for r in 0..s {
                    cum += counts[r as usize];
                    let exact = cum as f64 / total as f64;
                    assert!(
                        (dist.cdf(r) - exact).abs() < 1e-12,
                        "cdf mismatch s={s} n={n} r={r}: {} vs {exact}",
                        dist.cdf(r)
                    );
                    assert!(
                        (dist.pmf(r) - counts[r as usize] as f64 / total as f64).abs() < 1e-12,
                        "pmf mismatch s={s} n={n} r={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn single_draw_has_zero_range() {
        let d = RangeDistribution::new(100, 1);
        assert_eq!(d.cdf(0), 1.0);
        assert_eq!(d.pmf(0), 1.0);
    }

    #[test]
    fn pool_of_one_is_degenerate() {
        let d = RangeDistribution::new(1, 10);
        assert_eq!(d.cdf(0), 1.0);
        assert_eq!(d.quantile(0.999), 0);
    }

    #[test]
    fn cdf_monotone_for_realistic_pools() {
        // The three OS pools from the paper (§5.3.2).
        for pool in [2_500u32, 16_383, 28_232, 64_511] {
            let d = RangeDistribution::new(pool, 10);
            let mut prev = -1.0;
            for r in (0..pool).step_by((pool / 97).max(1) as usize) {
                let c = d.cdf(r);
                assert!((0.0..=1.0).contains(&c));
                assert!(c >= prev, "pool {pool} r {r}");
                prev = c;
            }
            assert!((d.cdf(pool - 1) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn matches_beta_approximation_in_the_bulk() {
        // For pool 28,232 (Linux) and 10 draws, the exact CDF and the
        // Beta(9,2) approximation should agree to a fraction of a percent.
        let pool = 28_232u32;
        let d = RangeDistribution::new(pool, 10);
        let b = crate::beta::Beta::range_model(10);
        for frac in [0.5, 0.7, 0.85, 0.95, 0.99] {
            let r = (frac * pool as f64) as u32;
            let exact = d.cdf(r);
            let approx = b.cdf(frac);
            assert!(
                (exact - approx).abs() < 5e-3,
                "pool {pool} frac {frac}: exact {exact} vs beta {approx}"
            );
        }
    }

    #[test]
    fn monte_carlo_agreement() {
        let pool = 2_500u32;
        let d = RangeDistribution::new(pool, 10);
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let trials = 20_000;
        let threshold = d.quantile(0.5);
        let mut below = 0u32;
        for _ in 0..trials {
            let mut mn = u32::MAX;
            let mut mx = 0;
            for _ in 0..10 {
                let v = rng.gen_range(0..pool);
                mn = mn.min(v);
                mx = mx.max(v);
            }
            if mx - mn <= threshold {
                below += 1;
            }
        }
        let frac = below as f64 / trials as f64;
        let expect = d.cdf(threshold);
        assert!(
            (frac - expect).abs() < 0.02,
            "MC {frac} vs exact {expect} at r={threshold}"
        );
    }

    #[test]
    fn quantile_is_inverse() {
        let d = RangeDistribution::new(16_383, 10);
        for p in [0.001, 0.05, 0.5, 0.95, 0.9995] {
            let r = d.quantile(p);
            assert!(d.cdf(r) >= p);
            if r > 0 {
                assert!(d.cdf(r - 1) < p);
            }
        }
    }

    #[test]
    fn mean_close_to_beta_estimate() {
        let d = RangeDistribution::new(28_232, 10);
        let exact = d.mean();
        let est = d.mean_beta_estimate();
        // (n-1)/(n+1)·s = 9/11 · 28232 ≈ 23099
        assert!((exact - est).abs() / est < 0.01, "exact {exact} est {est}");
    }
}
