//! Scalar summaries: mean, median, percentiles, extrema.

/// Summary statistics over a sample of `u32` values (e.g. per-resolver port
/// ranges, per-target hit counts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    pub count: usize,
    pub min: u32,
    pub max: u32,
    pub mean: f64,
    pub median: f64,
    pub p90: u32,
    pub p99: u32,
}

impl Summary {
    /// Compute from a sample. Returns `None` for empty input.
    pub fn of(values: &[u32]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let mut sorted = values.to_vec();
        sorted.sort_unstable();
        let count = sorted.len();
        let sum: u64 = sorted.iter().map(|&v| v as u64).sum();
        let median = if count % 2 == 1 {
            sorted[count / 2] as f64
        } else {
            (sorted[count / 2 - 1] as f64 + sorted[count / 2] as f64) / 2.0
        };
        Some(Summary {
            count,
            min: sorted[0],
            max: sorted[count - 1],
            mean: sum as f64 / count as f64,
            median,
            p90: percentile_sorted(&sorted, 0.90),
            p99: percentile_sorted(&sorted, 0.99),
        })
    }
}

/// Nearest-rank percentile of an already-sorted slice.
pub fn percentile_sorted(sorted: &[u32], p: f64) -> u32 {
    assert!(!sorted.is_empty());
    assert!((0.0..=1.0).contains(&p));
    let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Fraction of values satisfying a predicate.
pub fn fraction<T>(values: &[T], pred: impl Fn(&T) -> bool) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().filter(|v| pred(v)).count() as f64 / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[5, 1, 3, 2, 4]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn even_count_median_interpolates() {
        let s = Summary::of(&[1, 2, 3, 4]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn empty_is_none() {
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn percentiles_nearest_rank() {
        let sorted: Vec<u32> = (1..=100).collect();
        assert_eq!(percentile_sorted(&sorted, 0.90), 90);
        assert_eq!(percentile_sorted(&sorted, 0.99), 99);
        assert_eq!(percentile_sorted(&sorted, 1.0), 100);
        assert_eq!(percentile_sorted(&sorted, 0.0), 1);
        assert_eq!(percentile_sorted(&[7], 0.5), 7);
    }

    #[test]
    fn fraction_counts() {
        assert_eq!(fraction(&[1, 2, 3, 4], |&v| v % 2 == 0), 0.5);
        assert_eq!(fraction::<u32>(&[], |_| true), 0.0);
    }
}
