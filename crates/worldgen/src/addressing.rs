//! Deterministic allocation of globally-unique address space to synthetic
//! ASes, avoiding every special-purpose range (so the generated routing
//! table contains only "legitimate" prefixes, as §3.1 requires of targets).

use bcd_netsim::prefix::special;
use bcd_netsim::Prefix;
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// Hands out fresh /16 (IPv4) and /32 (IPv6) blocks.
#[derive(Debug)]
pub struct AddressAllocator {
    next_v4: u32,
    next_v6: u32,
    /// Pack successive [`carve_v4_24s`] calls into shared /16s instead of
    /// starting a fresh /16 per call.
    pack_v4: bool,
    /// The partially-carved /16 left by the last packed carve: the block
    /// and the number of /24s already taken from it.
    v4_partial: Option<(Prefix, usize)>,
}

impl Default for AddressAllocator {
    fn default() -> Self {
        AddressAllocator {
            // Start at 1.0.0.0 (0/8 is special).
            next_v4: 256,
            next_v6: 0,
            pack_v4: false,
            v4_partial: None,
        }
    }
}

impl AddressAllocator {
    /// A fresh allocator. Every [`carve_v4_24s`] call starts a fresh /16 —
    /// the historical address plan, which caps the world at ~56k carves.
    pub fn new() -> AddressAllocator {
        AddressAllocator::default()
    }

    /// A packing allocator: [`carve_v4_24s`] calls share /16s, so the
    /// ~14.5M usable /24s are the only budget. Internet-scale worlds (62k
    /// ASes > 56k /16 blocks) need this; it changes which /24 each AS
    /// receives, so scale-1.0 worlds keep [`new`](Self::new) for
    /// byte-compatibility with existing goldens.
    pub fn packed() -> AddressAllocator {
        AddressAllocator {
            pack_v4: true,
            ..AddressAllocator::default()
        }
    }

    /// The next unused, fully-routable IPv4 /16.
    pub fn next_v4_16(&mut self) -> Prefix {
        loop {
            let idx = self.next_v4;
            self.next_v4 += 1;
            let a = (idx >> 8) as u8;
            let b = (idx & 0xFF) as u8;
            assert!(a < 224, "IPv4 allocation space exhausted");
            let base = Ipv4Addr::new(a, b, 0, 0);
            // Reject the /16 if its first address is special (covers every
            // special-purpose /8 and the /16-scale registries); spot-check
            // two more addresses for ranges narrower than /16.
            let probes = [
                IpAddr::V4(base),
                IpAddr::V4(Ipv4Addr::new(a, b, 18, 1)),
                IpAddr::V4(Ipv4Addr::new(a, b, 255, 1)),
            ];
            if probes.iter().any(|p| special::is_special_purpose(*p)) {
                continue;
            }
            // Ranges narrower than /16 that sit *inside* an otherwise-fine
            // /16 (192.0.0/24, 192.0.2/24, 198.51.100/24, 203.0.113/24):
            // skip those /16s entirely.
            if (a == 192 && b == 0) || (a == 198 && b == 51) || (a == 203 && b == 0) {
                continue;
            }
            return Prefix::new(IpAddr::V4(base), 16);
        }
    }

    /// The next unused IPv6 /32 under 2600::/12.
    pub fn next_v6_32(&mut self) -> Prefix {
        let idx = self.next_v6;
        self.next_v6 += 1;
        assert!(idx < 0x000F_FFFF, "IPv6 allocation space exhausted");
        let seg0 = 0x2600 | ((idx >> 16) as u16 & 0x00FF);
        let seg1 = (idx & 0xFFFF) as u16;
        let base = Ipv6Addr::new(seg0, seg1, 0, 0, 0, 0, 0, 0);
        Prefix::new(IpAddr::V6(base), 32)
    }
}

/// Carve `count` /24s out of /16 blocks supplied by `alloc`, returning the
/// /24 prefixes. A packing allocator ([`AddressAllocator::packed`]) resumes
/// inside the previous carve's partially-used /16; the default allocator
/// always starts a fresh one.
pub fn carve_v4_24s(alloc: &mut AddressAllocator, count: usize) -> Vec<Prefix> {
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let (block, used) = match alloc.v4_partial.take() {
            Some(p) if alloc.pack_v4 => p,
            _ => (alloc.next_v4_16(), 0),
        };
        let take = (count - out.len()).min(256 - used);
        out.extend(block.subprefixes(24).skip(used).take(take));
        if alloc.pack_v4 && used + take < 256 {
            alloc.v4_partial = Some((block, used + take));
        }
    }
    out
}

/// Carve `count` /64s out of a fresh /32.
pub fn carve_v6_64s(alloc: &mut AddressAllocator, count: usize) -> (Prefix, Vec<Prefix>) {
    let block = alloc.next_v6_32();
    let subs: Vec<Prefix> = block.subprefixes(64).take(count).collect();
    (block, subs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn v4_blocks_are_unique_and_routable() {
        let mut a = AddressAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..2_000 {
            let p = a.next_v4_16();
            assert!(seen.insert(p), "duplicate block {p}");
            assert_eq!(p.len(), 16);
            // Every /24 inside must be non-special.
            for sub in p.subprefixes(24).take(8) {
                assert!(
                    !special::is_special_purpose(sub.nth(1).unwrap()),
                    "special address inside {sub}"
                );
            }
        }
    }

    #[test]
    fn v4_skips_documented_special_ranges() {
        let mut a = AddressAllocator::new();
        for _ in 0..3_000 {
            let p = a.next_v4_16();
            let net = match p.network() {
                IpAddr::V4(v) => v.octets(),
                _ => unreachable!(),
            };
            assert_ne!(net[0], 10);
            assert_ne!(net[0], 127);
            assert!(net[0] < 224);
            assert!(!(net[0] == 100 && (net[1] & 0xC0) == 64));
            assert!(!(net[0] == 192 && net[1] == 168));
            assert!(!(net[0] == 192 && net[1] == 0));
            assert!(!(net[0] == 198 && (net[1] == 18 || net[1] == 19 || net[1] == 51)));
            assert!(!(net[0] == 203 && net[1] == 0));
            assert!(!(net[0] == 172 && (16..32).contains(&net[1])));
            assert!(!(net[0] == 169 && net[1] == 254));
        }
    }

    #[test]
    fn v6_blocks_are_unique_global_unicast() {
        let mut a = AddressAllocator::new();
        let mut seen = HashSet::new();
        for _ in 0..1_000 {
            let p = a.next_v6_32();
            assert!(seen.insert(p));
            assert!(!special::is_special_purpose(p.nth(1).unwrap()));
        }
    }

    #[test]
    fn carving_v4() {
        let mut a = AddressAllocator::new();
        let p24s = carve_v4_24s(&mut a, 300);
        assert_eq!(p24s.len(), 300);
        let set: HashSet<_> = p24s.iter().collect();
        assert_eq!(set.len(), 300);
        for p in &p24s {
            assert_eq!(p.len(), 24);
        }
    }

    #[test]
    fn carving_v6() {
        let mut a = AddressAllocator::new();
        let (block, subs) = carve_v6_64s(&mut a, 40);
        assert_eq!(block.len(), 32);
        assert_eq!(subs.len(), 40);
        for s in &subs {
            assert_eq!(s.len(), 64);
            assert!(block.covers(s));
        }
    }

    #[test]
    fn packed_carving_shares_blocks_and_stays_unique() {
        let mut packed = AddressAllocator::packed();
        let mut all = Vec::new();
        // 100 carves of 5 /24s: packed fits them in ⌈500/256⌉ = 2 /16s.
        for _ in 0..100 {
            all.extend(carve_v4_24s(&mut packed, 5));
        }
        let set: HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), all.len(), "packed /24s must stay unique");
        let blocks: HashSet<u32> = all
            .iter()
            .map(|p| match p.network() {
                IpAddr::V4(v) => u32::from(v) >> 16,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(blocks.len(), 2, "500 packed /24s span exactly two /16s");
        // The default allocator burns a /16 per carve.
        let mut fresh = AddressAllocator::new();
        let a = carve_v4_24s(&mut fresh, 5);
        let b = carve_v4_24s(&mut fresh, 5);
        assert_ne!(a[0], b[0]);
        assert!(a.iter().chain(&b).all(|p| p.len() == 24));
    }

    #[test]
    fn deterministic_sequence() {
        let seq = |n: usize| {
            let mut a = AddressAllocator::new();
            (0..n).map(|_| a.next_v4_16()).collect::<Vec<_>>()
        };
        assert_eq!(seq(100), seq(100));
    }
}
