//! World construction: turn a [`WorldConfig`] into an immutable, shareable
//! [`Topology`] + node-blueprint table plus the ground-truth registry and
//! DITL traces. Engines are spawned from the built [`World`] with
//! [`World::spawn`] — one world build can back any number of concurrent
//! shard runtimes.

use crate::addressing::{carve_v4_24s, carve_v6_64s, AddressAllocator};
use crate::config::WorldConfig;
use crate::ditl::{self, DitlRecord};
use crate::profile::{
    sample_identity_for_class, sample_port_2018, sample_port_identity, AclKind, Port2018,
    PortClass, ResolverMeta,
};
use bcd_dns::log::shared_log;
use bcd_dns::{Acl, NodeBlueprint, ResolverConfig, SharedLog, Zone, ZoneMode};
use bcd_dnswire::Name;
use bcd_geo::{sample_country, Country, CountryProfile, GeoDb, COUNTRIES};
use bcd_netsim::{
    stream_seed, Asn, BorderPolicy, ChaosConfig, ChaosProfile, FaultDomain, FaultSchedule,
    HostConfig, HostId, LinkProfile, NetworkConfig, Prefix, Runtime, SimDuration, StackPolicy,
    Topology,
};
use bcd_osmodel::{DnsSoftware, Os};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashSet;
use std::net::IpAddr;
use std::sync::Arc;

/// Where the experiment's own DNS estate lives.
#[derive(Debug, Clone)]
pub struct AuthEstate {
    /// Experiment zone apex (`dns-lab.org`).
    pub apex: Name,
    /// IPv4-only follow-up zone apex (`f4.dns-lab.org`).
    pub f4_apex: Name,
    /// IPv6-only follow-up zone apex (`f6.dns-lab.org`).
    pub f6_apex: Name,
    /// TC=1 zone apex (`tcp.dns-lab.org`).
    pub tcp_apex: Name,
    /// Root server addresses (v4, v6) — every resolver's hints.
    pub root_v4: IpAddr,
    pub root_v6: IpAddr,
    /// Main experiment-zone server addresses.
    pub lab_v4: IpAddr,
    pub lab_v6: IpAddr,
}

/// The reserved attachment point for the scanner (bcd-core adds the node).
#[derive(Debug, Clone)]
pub struct ScannerSlot {
    pub asn: Asn,
    pub v4: IpAddr,
    pub v6: IpAddr,
}

/// Log-slot index of the experiment estate's query log (`dns-lab.org` +
/// follow-up zones) in a [`WorldRuntime`].
pub const LOG_EXPERIMENT: usize = 0;
/// Log-slot index of the root servers' query log (the DITL instrument).
pub const LOG_ROOT: usize = 1;

/// A fully built world: the immutable topology, the behaviour blueprint for
/// every host, and the ground-truth registry.
///
/// A `World` holds no engine state and no logs — it is `Send + Sync` and is
/// shared across shard threads behind one `Arc`. Each thread turns it into a
/// live engine with [`World::spawn`].
pub struct World {
    /// The immutable network world (ASes, routes, host table), shared by
    /// every runtime spawned from this world.
    pub topo: Arc<Topology>,
    /// Behaviour recipe per topology host, in host-id order.
    pub blueprints: Vec<NodeBlueprint>,
    pub cfg: WorldConfig,
    pub geo: GeoDb,
    /// Ground truth for every target address.
    pub resolvers: Vec<ResolverMeta>,
    /// Target address → index into `resolvers`, sorted by address for
    /// binary search. A plain sorted vector (not a hash map): iteration
    /// order is deterministic by construction and the index costs 24
    /// bytes/target instead of a hash table's ~48.
    pub by_addr: Vec<(IpAddr, u32)>,
    pub scanner: ScannerSlot,
    pub auth: AuthEstate,
    /// Public DNS service addresses (v4 then v6 per service).
    pub public_dns_v4: Vec<IpAddr>,
    pub public_dns_v6: Vec<IpAddr>,
    /// The synthesized root traces (§3.1's target source; §5.2.2's 2018
    /// comparison trace). Empty when `cfg.materialize_ditl` is off — the
    /// 2019 trace is then streamed into `ditl_candidates` instead.
    pub ditl2019: Vec<DitlRecord>,
    pub ditl2018: Vec<DitlRecord>,
    /// Deduplicated, sorted 2019 source addresses, produced by the
    /// streaming pipeline when `cfg.materialize_ditl` is off. Target
    /// extraction consumes either this or `ditl2019` — the result is
    /// identical (same RNG stream, and extraction dedupes anyway).
    pub ditl_candidates: Vec<IpAddr>,
    /// ASNs of measured ASes (excludes infrastructure/scanner/public DNS).
    pub measured_asns: Vec<Asn>,
    /// Host ids of the experiment-zone servers `(main, f4, f6)` — used by
    /// the §3.6.4 wildcard ablation.
    pub experiment_hosts: (usize, usize, usize),
    /// The IPv6 hitlist: /64s with observed activity (every /64 hosting a
    /// target, plus actives without targets), per §3.2's source heuristic.
    pub v6_hitlist: Vec<Prefix>,
    /// Compiled chaos schedule (from `cfg.chaos` and/or the `link_loss`
    /// alias), armed in every spawned runtime. Compiled once here so all
    /// shards share the identical schedule.
    pub faults: Option<Arc<FaultSchedule>>,
}

/// A live engine spawned from a [`World`]: a [`Runtime`] over the shared
/// topology plus this runtime's own (thread-local) query logs.
pub struct WorldRuntime {
    pub net: Runtime,
    /// Query log of the experiment estate (`dns-lab.org` + follow-up zones).
    pub log: SharedLog,
    /// Query log of the root servers (the DITL instrument).
    pub root_log: SharedLog,
}

/// Ground-truth inbound-filtering posture of one measured AS, as the
/// generator rolled it. Cross-method validation scores both survey
/// methods against this registry: the generator *knows* which border
/// knobs each AS got, so agreement with it is the strongest soundness
/// statement a simulated survey can make.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavTruth {
    pub asn: Asn,
    /// Full destination-side source-address validation at the border.
    pub dsav: bool,
    /// Subnet-granular SAVI: drops claimed sources from the destination's
    /// own /24 (v4) or /64 (v6).
    pub subnet_savi: bool,
    /// Partial internal SAV pass threshold: a source subnet passes iff its
    /// deterministic permille bucket (`bcd_netsim::subnet_permille`) is
    /// below this. 1000 = fully open to internal sources, 0 = fully closed.
    pub internal_pass_permille: u16,
    /// Ingress martian filter for v4 destination-as-source packets.
    pub filter_ds_ingress_v4: bool,
    /// The AS runs a transparent DNS interceptor (middlebox).
    pub interceptor: bool,
}

impl World {
    /// Ground truth for a target address.
    pub fn meta_of(&self, addr: IpAddr) -> Option<&ResolverMeta> {
        self.by_addr
            .binary_search_by(|&(a, _)| a.cmp(&addr))
            .ok()
            .map(|i| &self.resolvers[self.by_addr[i].1 as usize])
    }

    /// The AS info for an ASN, if registered.
    pub fn as_info(&self, asn: Asn) -> Option<&bcd_netsim::AsInfo> {
        self.topo.as_info(asn)
    }

    /// True ground-truth answer: does this AS lack DSAV?
    pub fn truly_lacks_dsav(&self, asn: Asn) -> bool {
        self.topo
            .as_info(asn)
            .map(|a| !a.policy.dsav)
            .unwrap_or(false)
    }

    /// The generator's ground-truth SAV posture for every measured AS, in
    /// ASN order — the registry cross-method agreement is scored against.
    pub fn sav_ground_truth(&self) -> Vec<SavTruth> {
        self.measured_asns
            .iter()
            .map(|&asn| {
                let info = self.as_info(asn).expect("measured AS must be registered");
                SavTruth {
                    asn,
                    dsav: info.policy.dsav,
                    subnet_savi: info.policy.subnet_savi,
                    internal_pass_permille: info.policy.internal_pass_permille,
                    filter_ds_ingress_v4: info.policy.filter_ds_ingress_v4,
                    interceptor: info.dns_interceptor.is_some(),
                }
            })
            .collect()
    }

    /// Instantiate a live engine over the shared topology: fresh query logs,
    /// fresh nodes from the blueprints, fresh per-host RNG streams. Nodes are
    /// constructed in host-id order from the same configs `build` produced,
    /// so every spawn behaves exactly like a freshly built world — without
    /// paying for world generation again.
    pub fn spawn(&self) -> WorldRuntime {
        self.spawn_for(None)
    }

    /// Like [`spawn`](Self::spawn), but with `Some(owned)` only hosts in
    /// the given measured ASes (plus the infrastructure, public-DNS and
    /// scanner ASes every shard talks to) get their real node; everything
    /// else becomes a [`Sink`](NodeBlueprint::Sink) placeholder at the
    /// same host id.
    ///
    /// Sound for AS-sharded surveys because a shard only ever sends
    /// traffic to its own destination ASes, and resolvers in non-owned
    /// ASes are passive until probed (no warmup queries) — a sink there
    /// receives nothing it was supposed to answer. Per-host RNG streams
    /// are keyed by host id, so the hosts that *are* instantiated behave
    /// byte-identically to a full spawn. At Internet scale this is what
    /// makes S-way sharding ~S-times lighter per shard: each runtime
    /// holds ~1/S of the million-host node table.
    pub fn spawn_for(&self, owned: Option<&HashSet<Asn>>) -> WorldRuntime {
        let log = shared_log();
        let root_log = shared_log();
        let logs = [log.clone(), root_log.clone()];
        let sink = NodeBlueprint::Sink;
        let nodes = self
            .blueprints
            .iter()
            .enumerate()
            .map(|(id, b)| {
                let live = match owned {
                    None => true,
                    Some(set) => {
                        let asn = self.topo.host_asn(id);
                        asn == INFRA_ASN
                            || asn == PUBLIC_DNS_ASN
                            || asn == SCANNER_ASN
                            || set.contains(&asn)
                    }
                };
                if live {
                    b.instantiate(&logs)
                } else {
                    sink.instantiate(&logs)
                }
            })
            .collect();
        let mut net = Runtime::new(Arc::clone(&self.topo), nodes);
        net.set_faults(self.faults.clone());
        WorldRuntime { net, log, root_log }
    }
}

const INFRA_ASN: Asn = Asn(64_500);
const PUBLIC_DNS_ASN: Asn = Asn(64_501);
const SCANNER_ASN: Asn = Asn(64_502);
const FIRST_MEASURED_ASN: u32 = 1_000;
/// Stream id for the public DNS hosts' identity-draw salts (see
/// [`ResolverConfig::identity_draw_salt`]).
const PUBLIC_DNS_SALT_STREAM: u64 = 0x5055_424C_4943_4453;
/// Stream id for the chaos seed backing the `link_loss` alias.
const LINK_LOSS_CHAOS_STREAM: u64 = 0x4C4C_4F53_5343_4841;

/// Pairs the topology under construction with one [`NodeBlueprint`] per
/// host, so host-id order stays authoritative for both.
struct WorldBuilder {
    tb: bcd_netsim::TopologyBuilder,
    blueprints: Vec<NodeBlueprint>,
}

impl WorldBuilder {
    fn new(cfg: NetworkConfig) -> WorldBuilder {
        WorldBuilder {
            tb: Topology::builder(cfg),
            blueprints: Vec::new(),
        }
    }

    fn add_simple_as(&mut self, asn: Asn, policy: BorderPolicy) {
        self.tb.add_simple_as(asn, policy);
    }

    fn announce(&mut self, prefix: Prefix, asn: Asn) {
        self.tb.announce(prefix, asn);
    }

    fn add_host(&mut self, cfg: HostConfig, blueprint: NodeBlueprint) -> HostId {
        let id = self.tb.add_host(cfg);
        debug_assert_eq!(id, self.blueprints.len());
        self.blueprints.push(blueprint);
        id
    }

    fn set_dns_interceptor(&mut self, asn: Asn, host: HostId) {
        self.tb.set_dns_interceptor(asn, host);
    }
}

struct AsPlan {
    asn: Asn,
    country: Country,
    profile: &'static CountryProfile,
    v4_prefixes: Vec<Prefix>,
    v6_prefixes: Vec<Prefix>,
    n_targets_v4: usize,
    n_targets_v6: usize,
    no_dsav: bool,
    /// AS-wide ACL prefix list (v4 + v6), built once and `Arc`-shared by
    /// every resolver in this AS whose ACL is AS-wide.
    as_wide: Arc<[Prefix]>,
    /// `as_wide` plus the private/ULA ranges, likewise shared.
    as_wide_private: Arc<[Prefix]>,
}

/// Resolver-config storage shared by every resolver in the world: one
/// allocation per world, one refcount bump per resolver. Without this an
/// Internet-scale build clones the root-hint list and ACL prefix vectors
/// about a million times.
struct SharedCfg {
    root_hints: Arc<[IpAddr]>,
    no_cuts: Arc<[(Name, Vec<IpAddr>)]>,
    no_prefixes: Arc<[Prefix]>,
    private_prefixes: Arc<[Prefix]>,
    localhost_prefixes: Arc<[Prefix]>,
}

/// The private/ULA ranges used by ACL materialization.
fn private_ranges() -> [Prefix; 3] {
    [
        "192.168.0.0/16".parse().unwrap(),
        "10.0.0.0/8".parse().unwrap(),
        "fc00::/7".parse().unwrap(),
    ]
}

/// Build the world.
pub fn build(cfg: WorldConfig) -> World {
    let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
    // Densified worlds pack AS address plans into shared /16s — 62k ASes
    // exceed the /16 count but not the /24 count. The scale-1.0 plan keeps
    // the historical fresh-/16-per-AS layout byte-for-byte.
    let mut alloc = if cfg.address_density < 1.0 {
        AddressAllocator::packed()
    } else {
        AddressAllocator::new()
    };
    // The classic `link_loss` knob is routed through the chaos layer (the
    // LinkProfile loss field samples the engine noise RNG, whose stream is
    // per-shard — chaos drops are keyed on packet identity instead, so a
    // lossy run is byte-identical at any shard count). The link profile
    // itself stays loss-free.
    let chaos_cfg: Option<ChaosConfig> = match (cfg.chaos.clone(), cfg.link_loss) {
        (None, l) if l <= 0.0 => None,
        (None, l) => Some(ChaosConfig::custom(
            stream_seed(cfg.seed, LINK_LOSS_CHAOS_STREAM),
            "link-loss",
            ChaosProfile::loss_only(l),
        )),
        (Some(mut c), l) => {
            if l > 0.0 {
                c.profile.loss = 1.0 - (1.0 - c.profile.loss) * (1.0 - l);
            }
            Some(c)
        }
    };
    let mut net = WorldBuilder::new(NetworkConfig {
        seed: cfg.seed.wrapping_add(1),
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        trace_capacity: cfg.trace_capacity,
        max_events: cfg.max_events,
        sched: cfg.sched,
    });
    let mut geo = GeoDb::new();

    // ---------------- infrastructure ----------------
    net.add_simple_as(INFRA_ASN, BorderPolicy::strict());
    let infra_v4 = alloc.next_v4_16();
    let (infra_v6, _) = carve_v6_64s(&mut alloc, 1);
    net.announce(infra_v4, INFRA_ASN);
    net.announce(infra_v6, INFRA_ASN);
    let v4 = |i: u128| infra_v4.nth(i).unwrap();
    let v6 = |i: u128| infra_v6.nth(i).unwrap();
    let (root_v4, root_v6) = (v4(4), v6(4));
    let (org_v4, org_v6) = (v4(5), v6(5));
    let (lab_v4, lab_v6) = (v4(10), v6(10));
    let f4_addr = v4(11);
    let f6_addr = v6(11);
    let (tcp_v4, tcp_v6) = (v4(12), v6(12));

    let apex: Name = "dns-lab.org".parse().unwrap();
    let f4_apex: Name = "f4.dns-lab.org".parse().unwrap();
    let f6_apex: Name = "f6.dns-lab.org".parse().unwrap();
    let tcp_apex: Name = "tcp.dns-lab.org".parse().unwrap();
    let org: Name = "org".parse().unwrap();

    // Root servers (logging = the DITL collection instrument).
    let root_zone = Zone::new(Name::root(), ZoneMode::Static(vec![])).delegate(
        org.clone(),
        vec![("a0.org".parse().unwrap(), vec![org_v4, org_v6])],
    );
    net.add_host(
        HostConfig {
            addrs: vec![root_v4, root_v6],
            asn: INFRA_ASN,
            stack: StackPolicy::strict(),
        },
        NodeBlueprint::Auth {
            zones: vec![root_zone],
            log: LOG_ROOT,
            log_queries: true,
        },
    );

    // org TLD.
    let org_zone = Zone::new(org, ZoneMode::Static(vec![])).delegate(
        apex.clone(),
        vec![("ns1.dns-lab.org".parse().unwrap(), vec![lab_v4, lab_v6])],
    );
    net.add_host(
        HostConfig {
            addrs: vec![org_v4, org_v6],
            asn: INFRA_ASN,
            stack: StackPolicy::strict(),
        },
        NodeBlueprint::Auth {
            zones: vec![org_zone],
            log: LOG_ROOT,
            log_queries: false,
        },
    );

    // Experiment zone with the three follow-up delegations.
    let lab_zone = Zone::new(apex.clone(), ZoneMode::Nxdomain)
        .delegate(
            f4_apex.clone(),
            vec![("ns.f4.dns-lab.org".parse().unwrap(), vec![f4_addr])],
        )
        .delegate(
            f6_apex.clone(),
            vec![("ns.f6.dns-lab.org".parse().unwrap(), vec![f6_addr])],
        )
        .delegate(
            tcp_apex.clone(),
            vec![("ns.tcp.dns-lab.org".parse().unwrap(), vec![tcp_v4, tcp_v6])],
        );
    let lab_host = net.add_host(
        HostConfig {
            addrs: vec![lab_v4, lab_v6],
            asn: INFRA_ASN,
            stack: StackPolicy::strict(),
        },
        NodeBlueprint::Auth {
            zones: vec![lab_zone],
            log: LOG_EXPERIMENT,
            log_queries: true,
        },
    );
    // f4: IPv4-only server; f6: IPv6-only; tcp: dual-stack TC zone.
    let mut follow_hosts = Vec::new();
    for (addrs, zone) in [
        (
            vec![f4_addr],
            Zone::new(f4_apex.clone(), ZoneMode::Nxdomain),
        ),
        (
            vec![f6_addr],
            Zone::new(f6_apex.clone(), ZoneMode::Nxdomain),
        ),
        (
            vec![tcp_v4, tcp_v6],
            Zone::new(tcp_apex.clone(), ZoneMode::TruncateUdp),
        ),
    ] {
        follow_hosts.push(net.add_host(
            HostConfig {
                addrs,
                asn: INFRA_ASN,
                stack: StackPolicy::strict(),
            },
            NodeBlueprint::Auth {
                zones: vec![zone],
                log: LOG_EXPERIMENT,
                log_queries: true,
            },
        ));
    }
    let experiment_hosts = (lab_host, follow_hosts[0], follow_hosts[1]);

    let root_hints: Arc<[IpAddr]> = vec![root_v4, root_v6].into();
    // The estate's zone cuts, pre-installed in the shared public resolvers
    // below. A cache that *learns* a cut on first contact logs a referral
    // walk whose presence depends on which client got there first — state
    // that spans ASes and therefore shards. Permanently-hot cuts (how a
    // long-running public service actually behaves) make the walk vanish
    // identically everywhere. In-AS resolvers stay cache-cold: their
    // clients never span shards, and their root walks are what the DITL
    // capture is for.
    let estate_cuts: Arc<[(Name, Vec<IpAddr>)]> = vec![
        (apex.clone(), vec![lab_v4, lab_v6]),
        (f4_apex.clone(), vec![f4_addr]),
        (f6_apex.clone(), vec![f6_addr]),
        (tcp_apex.clone(), vec![tcp_v4, tcp_v6]),
    ]
    .into();

    let shared = SharedCfg {
        root_hints: root_hints.clone(),
        no_cuts: Vec::new().into(),
        no_prefixes: Vec::new().into(),
        private_prefixes: private_ranges().to_vec().into(),
        localhost_prefixes: vec!["127.0.0.0/8".parse().unwrap(), "::1/128".parse().unwrap()].into(),
    };

    // ---------------- public DNS services ----------------
    net.add_simple_as(PUBLIC_DNS_ASN, BorderPolicy::strict());
    let pub_v4_block = alloc.next_v4_16();
    let (pub_v6_block, _) = carve_v6_64s(&mut alloc, 1);
    net.announce(pub_v4_block, PUBLIC_DNS_ASN);
    net.announce(pub_v6_block, PUBLIC_DNS_ASN);
    let mut public_dns_v4 = Vec::new();
    let mut public_dns_v6 = Vec::new();
    for i in 0..5u128 {
        let a4 = pub_v4_block.nth(10 + i).unwrap();
        let a6 = pub_v6_block.nth(10 + i).unwrap();
        public_dns_v4.push(a4);
        public_dns_v6.push(a6);
        net.add_host(
            HostConfig {
                addrs: vec![a4, a6],
                asn: PUBLIC_DNS_ASN,
                stack: Os::LinuxModern.stack_policy(),
            },
            NodeBlueprint::Resolver(ResolverConfig {
                addrs: vec![a4, a6],
                acl: Acl::Open,
                forward_to: None,
                qmin: false,
                qmin_halts_on_nxdomain: true,
                allocator: Os::LinuxModern.default_port_allocator(),
                os: Os::LinuxModern,
                p0f_visible: false,
                root_hints: root_hints.clone(),
                timeout: SimDuration::from_secs(2),
                max_attempts: 3,
                warmup: Vec::new(),
                // The public services relay queries from *every* measured
                // AS, so under AS-sharding their traffic interleaving
                // depends on the shard layout. Identity-derived draws keep
                // each relayed query's txid/port — and therefore the whole
                // merged survey log — invariant across shard counts.
                identity_draw_salt: Some(stream_seed(cfg.seed, PUBLIC_DNS_SALT_STREAM ^ i as u64)),
                preload_cuts: estate_cuts.clone(),
            }),
        );
    }

    // ---------------- the scanner's vantage ----------------
    net.add_simple_as(SCANNER_ASN, BorderPolicy::no_osav_vantage());
    let scan_v4_block = alloc.next_v4_16();
    let (scan_v6_block, _) = carve_v6_64s(&mut alloc, 1);
    net.announce(scan_v4_block, SCANNER_ASN);
    net.announce(scan_v6_block, SCANNER_ASN);
    let scanner = ScannerSlot {
        asn: SCANNER_ASN,
        v4: scan_v4_block.nth(10).unwrap(),
        v6: scan_v6_block.nth(10).unwrap(),
    };

    // ---------------- measured ASes ----------------
    let mut plans: Vec<AsPlan> = Vec::with_capacity(cfg.n_as);
    for i in 0..cfg.n_as {
        let asn = Asn(FIRST_MEASURED_ASN + i as u32);
        let country = sample_country(&mut rng);
        let profile = country.profile().unwrap_or(&COUNTRIES[COUNTRIES.len() - 1]);
        // Heavy-tailed target count around the country mean.
        let mean = (profile.targets_per_as * cfg.target_scale).max(1.0);
        let shape: f64 = rng.gen_range(0.25..2.5);
        let n_targets_v4 = ((mean * shape * shape) as usize).clamp(1, 4_000);
        // DSAV absence, with the country's size bias.
        let size_factor = (n_targets_v4 as f64 / mean).max(0.1);
        let p_no_dsav =
            (profile.no_dsav_rate * size_factor.powf(profile.size_bias * 0.4)).clamp(0.0, 1.0);
        let no_dsav = rng.gen_bool(p_no_dsav);

        // Address space: at least 2 /24s so other-prefix sources exist.
        // `address_density == 1.0` (all historical presets) multiplies
        // through exactly, so the carve — and everything downstream of the
        // allocator — is unchanged for them.
        let n_24s = ((n_targets_v4 as f64 * rng.gen_range(0.6..2.0) * cfg.address_density)
            as usize)
            .clamp(2, 300);
        let v4_prefixes = carve_v4_24s(&mut alloc, n_24s);

        let has_v6 = rng.gen_bool(cfg.v6_as_fraction);
        let (v6_prefixes, n_targets_v6) = if has_v6 {
            let n64 = (n_24s / 2).clamp(2, 120);
            let (_, subs) = carve_v6_64s(&mut alloc, n64);
            // The paper's v6 target density is roughly half the v4 one
            // (785k/7.9k vs 11.2M/54k targets per AS).
            let nt6 = (n_targets_v4 / 2).max(1);
            (subs, nt6)
        } else {
            (Vec::new(), 0)
        };

        let as_wide: Arc<[Prefix]> = v4_prefixes
            .iter()
            .chain(&v6_prefixes)
            .copied()
            .collect::<Vec<Prefix>>()
            .into();
        let as_wide_private: Arc<[Prefix]> = as_wide
            .iter()
            .copied()
            .chain(private_ranges())
            .collect::<Vec<Prefix>>()
            .into();
        plans.push(AsPlan {
            asn,
            country,
            profile,
            v4_prefixes,
            v6_prefixes,
            n_targets_v4,
            n_targets_v6,
            no_dsav,
            as_wide,
            as_wide_private,
        });
    }

    let mut resolvers: Vec<ResolverMeta> = Vec::new();
    // Collision membership during generation only; the World's queryable
    // index is the sorted `by_addr` vector built after the loop. (The set
    // is never iterated, so its hash order can't leak into the build.)
    let mut target_addrs: HashSet<IpAddr> = HashSet::new();
    let mut measured_asns = Vec::with_capacity(plans.len());

    for plan in &plans {
        measured_asns.push(plan.asn);
        // An AS that deploys DSAV also filters bogon (private/loopback)
        // sources — SAV hygiene comes as a package; without this, a
        // "protected" network would still admit our private-source spoofs
        // and the paper's reachability ⇒ no-DSAV implication would break.
        let internal_pass_permille = if !plan.no_dsav {
            0
        } else if rng.gen_bool(cfg.fully_spoofable_fraction) {
            1000
        } else {
            rng.gen_range(cfg.partial_pass_permille.0..=cfg.partial_pass_permille.1)
        };
        let policy = BorderPolicy {
            osav: rng.gen_bool(cfg.osav_fraction),
            dsav: !plan.no_dsav,
            filter_private_ingress: !plan.no_dsav || rng.gen_bool(cfg.private_filter_fraction),
            filter_loopback_ingress: !plan.no_dsav || rng.gen_bool(cfg.loopback_filter_fraction),
            filter_loopback_ingress_v6: !plan.no_dsav
                || rng.gen_bool(cfg.loopback_filter_fraction_v6),
            filter_ds_ingress_v4: plan.no_dsav && rng.gen_bool(cfg.ds_filter_fraction_v4),
            subnet_savi: plan.no_dsav && rng.gen_bool(cfg.subnet_savi_fraction),
            internal_pass_permille,
        };
        net.add_simple_as(plan.asn, policy);
        for p in plan.v4_prefixes.iter().chain(&plan.v6_prefixes) {
            net.announce(*p, plan.asn);
            // Occasionally a prefix geolocates to a second country.
            let c = if rng.gen_bool(0.02) {
                sample_country(&mut rng)
            } else {
                plan.country
            };
            geo.insert(*p, plan.asn, c);
        }

        // A middlebox AS intercepts all inbound UDP/53.
        let middlebox = plan.no_dsav && rng.gen_bool(cfg.middlebox_as_fraction);
        if middlebox {
            let mbx_addr = plan.v4_prefixes[0].nth(250).unwrap();
            let upstream = public_dns_v4[rng.gen_range(0..public_dns_v4.len())];
            let host = net.add_host(
                HostConfig {
                    addrs: vec![mbx_addr],
                    asn: plan.asn,
                    stack: StackPolicy::permissive(),
                },
                NodeBlueprint::Interceptor {
                    addr: mbx_addr,
                    upstream,
                },
            );
            net.set_dns_interceptor(plan.asn, host);
        }

        // Lazily created in-AS upstream for forwarders.
        let mut isp_upstream: Option<IpAddr> = None;
        // Secondary (dual-stack) addresses already handed out in this AS.
        let mut aux_used: std::collections::HashSet<IpAddr> = std::collections::HashSet::new();

        // ---- v4 targets, then v6 targets ----
        for (v6_family, count) in [(false, plan.n_targets_v4), (true, plan.n_targets_v6)] {
            let prefixes = if v6_family {
                &plan.v6_prefixes
            } else {
                &plan.v4_prefixes
            };
            if prefixes.is_empty() {
                continue;
            }
            let mut any_responsive = false;
            // One extra iteration slot for the promotion pass below.
            for extra in 0..=count {
                if extra < count {
                    // normal target
                } else {
                    // Promotion pass: if a no-DSAV AS ended with zero
                    // responsive targets (a down-scaling artifact), add one
                    // guaranteed-responsive target.
                    if any_responsive
                        || count == 0
                        || !plan.no_dsav
                        || !rng.gen_bool(cfg.ensure_responsive_prob)
                    {
                        break;
                    }
                }
                // Address: random prefix, low host offset (v6 "hitlist
                // style": first 100 addresses of the /64, §3.2).
                let p = prefixes[rng.gen_range(0..prefixes.len())];
                let offset: u128 = if v6_family {
                    rng.gen_range(2..100)
                } else {
                    rng.gen_range(1..240)
                };
                let addr = p.nth(offset).unwrap();
                if target_addrs.contains(&addr) {
                    continue; // collision: skip (target counts are approximate)
                }

                let accept = if v6_family {
                    (plan.profile.accept_rate * cfg.v6_accept_multiplier).min(0.95)
                } else {
                    (plan.profile.accept_rate * cfg.v4_accept_multiplier).min(0.95)
                };
                let roll: f64 = rng.gen();
                let (live, responsive) = if extra == count || roll < accept {
                    (true, true)
                } else if rng.gen_bool(1.0 - cfg.refuse_all_fraction) {
                    (false, false) // stale / never was a resolver
                } else {
                    (true, false) // live but refuses everything
                };
                any_responsive |= responsive;

                let meta = if !live {
                    ResolverMeta {
                        addr,
                        other_addr: None,
                        asn: plan.asn,
                        live: false,
                        responsive: false,
                        open: false,
                        forwards: false,
                        qmin: false,
                        qmin_halts: false,
                        os: Os::LinuxModern,
                        software: DnsSoftware::Bind99Plus,
                        port_class: PortClass::FullRange,
                        p0f_visible: false,
                        acl: AclKind::NoMatch,
                        port_2018: Port2018::Absent,
                    }
                } else {
                    build_resolver(
                        &cfg,
                        &mut rng,
                        &mut net,
                        plan,
                        addr,
                        v6_family,
                        responsive,
                        &shared,
                        &public_dns_v4,
                        &public_dns_v6,
                        &mut isp_upstream,
                        &mut aux_used,
                    )
                };
                target_addrs.insert(addr);
                resolvers.push(meta);
            }
        }
    }

    // The IPv6 hitlist: /64s that contain targets ("observed activity"),
    // plus a sprinkling of active-but-untargeted prefixes.
    let mut v6_hitlist: Vec<Prefix> = resolvers
        .iter()
        .filter(|r| r.addr.is_ipv6())
        .map(|r| Prefix::subprefix_of(r.addr, 64))
        .collect();
    v6_hitlist.sort();
    v6_hitlist.dedup();

    drop(target_addrs);
    // The queryable index: sorted by address (unique by construction).
    let mut by_addr: Vec<(IpAddr, u32)> = resolvers
        .iter()
        .enumerate()
        .map(|(i, r)| (r.addr, i as u32))
        .collect();
    by_addr.sort_unstable_by_key(|&(a, _)| a);

    // ---------------- DITL traces ----------------
    let (ditl2019, ditl2018, ditl_candidates) = if cfg.materialize_ditl {
        let t2019 = ditl::generate_2019(&mut rng, &resolvers, &mut alloc);
        let t2018 = ditl::generate_2018(&mut rng, &resolvers);
        (t2019, t2018, Vec::new())
    } else {
        // Streaming pipeline: same RNG draws as `generate_2019`, but only
        // the deduplicated source list survives. The 2018 comparison trace
        // is skipped entirely (nothing after this point reads `rng`, so
        // its draws are not owed).
        let cands = ditl::candidate_sources_2019(&mut rng, &resolvers, &mut alloc);
        (Vec::new(), Vec::new(), cands)
    };

    let auth = AuthEstate {
        apex,
        f4_apex,
        f6_apex,
        tcp_apex,
        root_v4,
        root_v6,
        lab_v4,
        lab_v6,
    };

    let WorldBuilder { tb, blueprints } = net;
    let topo = Arc::new(tb.finish());

    // Compile the chaos schedule over the finished world. The fault domain
    // is the measured edge: burst/flap windows target measured ASes,
    // crash/restart epochs target resolver hosts inside them. The domain
    // is a pure function of the build, so every shard (and every shard
    // *count*) sees one identical schedule.
    let faults = chaos_cfg.map(|c| {
        let measured: std::collections::HashSet<u32> = measured_asns.iter().map(|a| a.0).collect();
        let crash_hosts: Vec<HostId> = blueprints
            .iter()
            .enumerate()
            .filter(|(id, b)| {
                matches!(b, NodeBlueprint::Resolver(_)) && measured.contains(&topo.host_asn(*id).0)
            })
            .map(|(id, _)| id)
            .collect();
        Arc::new(FaultSchedule::compile(
            &c,
            &FaultDomain {
                asns: measured_asns.clone(),
                crash_hosts,
            },
        ))
    });

    World {
        topo,
        blueprints,
        cfg,
        geo,
        resolvers,
        by_addr,
        scanner,
        auth,
        public_dns_v4,
        public_dns_v6,
        ditl2019,
        ditl2018,
        ditl_candidates,
        measured_asns,
        experiment_hosts,
        v6_hitlist,
        faults,
    }
}

/// Switch the experiment zones from NXDOMAIN to wildcard synthesis — the
/// §3.6.4 fix the paper proposes for a future campaign: "a future version
/// of our experiment would produce more inclusive results by returning
/// answers synthesized from wildcard entries, rather than returning
/// NXDOMAIN." With wildcards, QNAME-minimizing resolvers never hit the
/// NXDOMAIN cut, so they complete the full QNAME and stay countable.
pub fn set_experiment_zone_wildcard(world: &mut World) {
    let (main, f4, f6) = world.experiment_hosts;
    let apexes = [
        world.auth.apex.clone(),
        world.auth.f4_apex.clone(),
        world.auth.f6_apex.clone(),
    ];
    for (host, apex) in [main, f4, f6].into_iter().zip(apexes) {
        // The flip edits the *blueprint*, before any runtime is spawned, so
        // every shard's auth servers come up in wildcard mode.
        let NodeBlueprint::Auth { zones, .. } = &mut world.blueprints[host] else {
            panic!("experiment host is an AuthServer");
        };
        zones
            .iter_mut()
            .find(|z| z.apex == apex)
            .expect("zone not served by this host")
            .mode = ZoneMode::Wildcard;
    }
}

/// Create one live resolver host and return its truth record.
#[allow(clippy::too_many_arguments)]
fn build_resolver(
    cfg: &WorldConfig,
    rng: &mut ChaCha8Rng,
    net: &mut WorldBuilder,
    plan: &AsPlan,
    addr: IpAddr,
    v6_family: bool,
    responsive: bool,
    shared: &SharedCfg,
    public_dns_v4: &[IpAddr],
    public_dns_v6: &[IpAddr],
    isp_upstream: &mut Option<IpAddr>,
    aux_used: &mut std::collections::HashSet<IpAddr>,
) -> ResolverMeta {
    // Refuse-all resolvers: a live host whose ACL matches nothing.
    if !responsive {
        let identity = sample_port_identity(rng);
        let resolver_cfg = ResolverConfig {
            addrs: vec![addr],
            acl: Acl::Allow(shared.no_prefixes.clone()),
            forward_to: None,
            qmin: false,
            qmin_halts_on_nxdomain: true,
            allocator: identity.allocator.clone(),
            os: identity.os,
            p0f_visible: identity.p0f_visible,
            root_hints: shared.root_hints.clone(),
            timeout: SimDuration::from_secs(2),
            max_attempts: 3,
            warmup: Vec::new(),
            identity_draw_salt: None,
            preload_cuts: shared.no_cuts.clone(),
        };
        net.add_host(
            HostConfig {
                addrs: vec![addr],
                asn: plan.asn,
                stack: identity.os.stack_policy(),
            },
            NodeBlueprint::Resolver(resolver_cfg),
        );
        return ResolverMeta {
            addr,
            other_addr: None,
            asn: plan.asn,
            live: true,
            responsive: false,
            open: false,
            forwards: false,
            qmin: false,
            qmin_halts: false,
            os: identity.os,
            software: identity.software,
            port_class: identity.class,
            p0f_visible: identity.p0f_visible,
            acl: AclKind::NoMatch,
            port_2018: sample_port_2018(rng, identity.class),
        };
    }

    // Responsive: forwarder or direct.
    let fwd_frac = if v6_family {
        cfg.forward_fraction_v6
    } else {
        cfg.forward_fraction_v4
    };
    let forwards = rng.gen_bool(fwd_frac);
    let qmin = rng.gen_bool(cfg.qmin_fraction);
    let qmin_halts = qmin && rng.gen_bool(cfg.qmin_halts_fraction);

    // Dual-stack: v6 targets are mostly dual-stack boxes. Secondary v4
    // addresses come from the 240..250 offsets (targets use 1..240) and
    // must be unique within the AS.
    let other_addr: Option<IpAddr> = if v6_family && rng.gen_bool(0.6) {
        (0..20)
            .map(|_| {
                let p = plan.v4_prefixes[rng.gen_range(0..plan.v4_prefixes.len())];
                p.nth(rng.gen_range(240..250)).unwrap()
            })
            .find(|a| aux_used.insert(*a))
    } else {
        None
    };
    let mut addrs = vec![addr];
    addrs.extend(other_addr);

    let (identity, open) = if forwards {
        // Forwarders' own port behaviour is invisible to the authoritative
        // side; give them a common identity and the forwarder open-rate.
        let identity = sample_identity_for_class(rng, PortClass::LinuxPool);
        (identity, rng.gen_bool(cfg.forwarder_open_fraction))
    } else {
        let identity = sample_port_identity(rng);
        let open = rng.gen_bool(identity.class.open_probability());
        (identity, open)
    };

    let acl_kind = if open {
        AclKind::Open
    } else {
        AclKind::sample_closed(rng)
    };
    let acl = materialize_acl(acl_kind, addr, plan, shared);

    let forward_to = if forwards {
        Some(pick_upstream(
            rng,
            net,
            plan,
            v6_family,
            shared,
            public_dns_v4,
            public_dns_v6,
            isp_upstream,
        ))
    } else {
        None
    };

    let resolver_cfg = ResolverConfig {
        addrs: addrs.clone(),
        acl,
        forward_to,
        qmin,
        qmin_halts_on_nxdomain: qmin_halts,
        allocator: identity.allocator.clone(),
        os: identity.os,
        p0f_visible: identity.p0f_visible,
        root_hints: shared.root_hints.clone(),
        timeout: SimDuration::from_secs(2),
        max_attempts: 3,
        warmup: Vec::new(),
        identity_draw_salt: None,
        preload_cuts: shared.no_cuts.clone(),
    };
    net.add_host(
        HostConfig {
            addrs,
            asn: plan.asn,
            stack: identity.os.stack_policy(),
        },
        NodeBlueprint::Resolver(resolver_cfg),
    );

    ResolverMeta {
        addr,
        other_addr,
        asn: plan.asn,
        live: true,
        responsive: true,
        open,
        forwards,
        qmin,
        qmin_halts,
        os: identity.os,
        software: identity.software,
        port_class: identity.class,
        p0f_visible: identity.p0f_visible,
        acl: acl_kind,
        port_2018: sample_port_2018(rng, identity.class),
    }
}

/// Turn an [`AclKind`] into concrete prefixes for this resolver. Every
/// non-address-specific list is `Arc`-shared (per world or per AS); only
/// the subnet/self kinds allocate per resolver, and those are one prefix.
fn materialize_acl(kind: AclKind, addr: IpAddr, plan: &AsPlan, shared: &SharedCfg) -> Acl {
    match kind {
        AclKind::Open => Acl::Open,
        AclKind::AsWide => Acl::Allow(plan.as_wide.clone()),
        AclKind::SameSubnet => Acl::Allow(
            vec![Prefix::subprefix_of(
                addr,
                if addr.is_ipv6() { 64 } else { 24 },
            )]
            .into(),
        ),
        AclKind::SelfOnly => Acl::Allow(
            vec![Prefix::subprefix_of(
                addr,
                if addr.is_ipv6() { 128 } else { 32 },
            )]
            .into(),
        ),
        AclKind::AsWidePlusPrivate => Acl::Allow(plan.as_wide_private.clone()),
        AclKind::PrivateOnly => Acl::Allow(shared.private_prefixes.clone()),
        AclKind::LocalhostOnly => Acl::Allow(shared.localhost_prefixes.clone()),
        AclKind::NoMatch => Acl::Allow(shared.no_prefixes.clone()),
    }
}

/// Choose a forwarder's upstream: an in-AS ISP resolver (created on first
/// use) or a public DNS service.
#[allow(clippy::too_many_arguments)]
fn pick_upstream(
    rng: &mut ChaCha8Rng,
    net: &mut WorldBuilder,
    plan: &AsPlan,
    v6_family: bool,
    shared: &SharedCfg,
    public_dns_v4: &[IpAddr],
    public_dns_v6: &[IpAddr],
    isp_upstream: &mut Option<IpAddr>,
) -> IpAddr {
    if v6_family {
        // v6 forwarders ride public DNS over v6.
        return public_dns_v6[rng.gen_range(0..public_dns_v6.len())];
    }
    if rng.gen_bool(0.5) {
        return public_dns_v4[rng.gen_range(0..public_dns_v4.len())];
    }
    if let Some(up) = *isp_upstream {
        return up;
    }
    // Create the AS's ISP resolver: closed to the outside, AS-wide ACL.
    // At most one per AS, so the v4 prefix list is cloned, not shared.
    let addr = plan.v4_prefixes[0].nth(251).unwrap();
    let cfg = ResolverConfig {
        addrs: vec![addr],
        acl: Acl::Allow(plan.v4_prefixes.clone().into()),
        forward_to: None,
        qmin: false,
        qmin_halts_on_nxdomain: true,
        allocator: Os::LinuxModern.default_port_allocator(),
        os: Os::LinuxModern,
        p0f_visible: false,
        root_hints: shared.root_hints.clone(),
        timeout: SimDuration::from_secs(2),
        max_attempts: 3,
        warmup: Vec::new(),
        identity_draw_salt: None,
        preload_cuts: shared.no_cuts.clone(),
    };
    net.add_host(
        HostConfig {
            addrs: vec![addr],
            asn: plan.asn,
            stack: Os::LinuxModern.stack_policy(),
        },
        NodeBlueprint::Resolver(cfg),
    );
    *isp_upstream = Some(addr);
    addr
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_world_builds_and_is_deterministic() {
        let w1 = build(WorldConfig::tiny(11));
        let w2 = build(WorldConfig::tiny(11));
        assert_eq!(w1.resolvers.len(), w2.resolvers.len());
        assert!(!w1.resolvers.is_empty());
        assert_eq!(w1.measured_asns.len(), w1.cfg.n_as);
        // Same addresses in the same order.
        let a1: Vec<IpAddr> = w1.resolvers.iter().map(|r| r.addr).collect();
        let a2: Vec<IpAddr> = w2.resolvers.iter().map(|r| r.addr).collect();
        assert_eq!(a1, a2);
        assert_eq!(w1.ditl2019.len(), w2.ditl2019.len());
    }

    #[test]
    fn world_has_required_infrastructure() {
        let w = build(WorldConfig::tiny(3));
        // Roots, org, lab, f4, f6, tcp, 5 public resolvers at minimum.
        assert!(w.topo.host_count() > 11);
        assert_eq!(w.public_dns_v4.len(), 5);
        // Scanner slot routes to the scanner AS.
        assert_eq!(w.topo.routes().origin(w.scanner.v4), Some(w.scanner.asn));
        assert_eq!(w.topo.routes().origin(w.scanner.v6), Some(w.scanner.asn));
        // The scanner AS must lack OSAV (the vantage requirement, §3.4).
        assert!(!w.topo.as_info(w.scanner.asn).unwrap().policy.osav);
        // Auth addresses route to infrastructure.
        assert_eq!(w.topo.routes().origin(w.auth.root_v4), Some(INFRA_ASN));
        assert_eq!(w.topo.routes().origin(w.auth.lab_v6), Some(INFRA_ASN));
    }

    #[test]
    fn dsav_rate_is_roughly_half() {
        let w = build(WorldConfig::paper_shape(5));
        let lacking = w
            .measured_asns
            .iter()
            .filter(|&&a| w.truly_lacks_dsav(a))
            .count();
        let frac = lacking as f64 / w.measured_asns.len() as f64;
        assert!(
            (0.35..0.60).contains(&frac),
            "no-DSAV fraction {frac} out of expected band"
        );
    }

    #[test]
    fn target_truth_is_indexed() {
        let w = build(WorldConfig::tiny(7));
        for (i, r) in w.resolvers.iter().enumerate() {
            assert!(std::ptr::eq(
                w.meta_of(r.addr).expect("indexed"),
                &w.resolvers[i]
            ));
            assert_eq!(w.topo.routes().origin(r.addr), Some(r.asn));
        }
        // The index is strictly sorted (unique addresses, binary-searchable).
        assert!(w.by_addr.windows(2).all(|p| p[0].0 < p[1].0));
    }

    #[test]
    fn by_addr_index_is_insertion_order_independent() {
        // The queryable index is a sorted vector: whatever order targets
        // were generated in (or any future parallel build produces), the
        // index — and therefore every lookup and any iteration over it —
        // is identical. This pins the property that replaced the old
        // HashMap index.
        let w = build(WorldConfig::tiny(31));
        let mut forward: Vec<(IpAddr, u32)> = w
            .resolvers
            .iter()
            .enumerate()
            .map(|(i, r)| (r.addr, i as u32))
            .collect();
        let mut reversed: Vec<(IpAddr, u32)> = forward.iter().rev().copied().collect();
        forward.sort_unstable_by_key(|&(a, _)| a);
        reversed.sort_unstable_by_key(|&(a, _)| a);
        assert_eq!(forward, reversed);
        assert_eq!(forward, w.by_addr);
    }

    #[test]
    fn streaming_ditl_matches_materialized_candidates() {
        // Building with `materialize_ditl` off must leave every derived
        // quantity identical: same topology digest (same RNG path), and a
        // candidate list equal to the deduplicated sources of the
        // materialized trace.
        let mat = build(WorldConfig::tiny(19));
        let streamed = build(WorldConfig {
            materialize_ditl: false,
            ..WorldConfig::tiny(19)
        });
        assert_eq!(mat.topo.digest(), streamed.topo.digest());
        assert!(streamed.ditl2019.is_empty() && streamed.ditl2018.is_empty());
        let mut expect: Vec<IpAddr> = mat.ditl2019.iter().map(|r| r.src).collect();
        expect.sort_unstable();
        expect.dedup();
        assert_eq!(streamed.ditl_candidates, expect);
    }

    #[test]
    fn responsive_targets_exist_and_mix_open_closed() {
        let w = build(WorldConfig::paper_shape(9));
        let responsive: Vec<_> = w.resolvers.iter().filter(|r| r.responsive).collect();
        assert!(
            responsive.len() > 100,
            "expected a healthy responsive population, got {}",
            responsive.len()
        );
        let open = responsive.iter().filter(|r| r.open).count();
        let frac = open as f64 / responsive.len() as f64;
        // §5.1: 40% open globally.
        assert!((0.30..0.50).contains(&frac), "open fraction {frac}");
        let forwarders = responsive.iter().filter(|r| r.forwards).count();
        let ffrac = forwarders as f64 / responsive.len() as f64;
        assert!((0.30..0.55).contains(&ffrac), "forward fraction {ffrac}");
    }

    #[test]
    fn v6_targets_present() {
        let w = build(WorldConfig::paper_shape(13));
        let v6 = w.resolvers.iter().filter(|r| r.addr.is_ipv6()).count();
        assert!(v6 > 20, "v6 targets: {v6}");
    }
}
