//! World-generation configuration.
//!
//! Defaults are calibrated so a generated world's *shape* matches the
//! paper's measured marginals. All fractions are documented with the paper
//! number they target.

/// Knobs for the synthetic Internet.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Number of measured ASes (the paper tested ~62,000; the default world
    /// is scaled down so a full survey runs in seconds).
    pub n_as: usize,
    /// Fraction of ASes that also announce IPv6 space (paper: 7,904 of
    /// ~54k–62k ≈ 0.13).
    pub v6_as_fraction: f64,
    /// Global multiplier on the per-country `targets_per_as` means, to
    /// shrink the resolver population proportionally with `n_as`.
    pub target_scale: f64,
    /// Fraction of DITL-derived targets that are *stale* — no longer (or
    /// never) a live resolver at experiment time (§3.6.2 churn; drives the
    /// gap between per-AS and per-IP reachability).
    pub stale_target_fraction: f64,
    /// Of non-stale, non-handling targets: fraction that are live but
    /// REFUSE every spoofed source (§3.8's conservative-estimate evidence).
    pub refuse_all_fraction: f64,
    /// Probability that a no-DSAV AS with targets but no responsive
    /// resolver (an artifact of down-scaling) gets one promoted — DITL
    /// sources were active resolvers months before the scan, so almost
    /// every AS in the trace still hosts at least one live handler.
    pub ensure_responsive_prob: f64,
    /// IPv6 acceptance multiplier over the per-country rate (the paper
    /// found v6 targets *more* reachable: 6.2% vs 4.6%).
    pub v6_accept_multiplier: f64,
    /// IPv4 acceptance damping (compensates the responsive-promotion pass
    /// so per-IP reachability stays at the paper's 4.6%).
    pub v4_accept_multiplier: f64,

    // ---- behaviour mixes among *responsive* resolvers ----
    /// Fraction of responsive v4 resolvers that forward (§5.4: 47%).
    pub forward_fraction_v4: f64,
    /// Fraction of responsive v6 resolvers that forward (§5.4: 16%).
    pub forward_fraction_v6: f64,
    /// Open-resolver fraction among *forwarders* (derived so the global
    /// open share lands at §5.1's 40%).
    pub forwarder_open_fraction: f64,
    /// QNAME-minimizing resolvers (§3.6.4: 0.16% of targets).
    pub qmin_fraction: f64,
    /// Of qmin resolvers: fraction that halt on NXDOMAIN, hiding the full
    /// QNAME (§3.6.4: 55%).
    pub qmin_halts_fraction: f64,

    // ---- AS-level knobs ----
    /// Fraction of no-DSAV ASes whose inbound DNS is grabbed by a
    /// transparent middlebox (§3.6.1: explains the ASes with no direct
    /// in-AS source at our authoritatives — 14% of v4 reachable ASes).
    pub middlebox_as_fraction: f64,
    /// Fraction of no-DSAV ASes that nevertheless run subnet-granular SAVI
    /// (blocks same-prefix and dst-as-src spoofs; calibrated against
    /// Table 3's other-prefix-exclusive share).
    pub subnet_savi_fraction: f64,
    /// Fraction of no-DSAV ASes with *no* partial internal SAV at all
    /// (every internal-prefix spoof passes). The remainder filter most
    /// internal prefixes, which is why the paper's median reachable target
    /// responded to only ~3 of the 101 spoofed sources (§4.1).
    pub fully_spoofable_fraction: f64,
    /// For partially-filtered ASes: the permille of internal subnets whose
    /// spoofs pass, sampled uniformly from this range.
    pub partial_pass_permille: (u16, u16),
    /// Fraction of no-DSAV ASes filtering private-source ingress
    /// (Table 3: private sources reached only 12–14% of reachable ASes).
    pub private_filter_fraction: f64,
    /// Fraction of no-DSAV ASes filtering IPv4 loopback-source ingress
    /// (near-universal: the paper saw a single v4 loopback hit).
    pub loopback_filter_fraction: f64,
    /// Fraction filtering IPv6 loopback-source ingress (much weaker in
    /// practice: 106 v6 hits).
    pub loopback_filter_fraction_v6: f64,
    /// Fraction of no-DSAV ASes dropping IPv4 dst-as-src martians at the
    /// border (calibrates the paper's 17% v4 vs 70% v6 asymmetry).
    pub ds_filter_fraction_v4: f64,
    /// OSAV deployment among measured ASes (irrelevant to DSAV results but
    /// part of the world; ~0.75 per the spoofer project).
    pub osav_fraction: f64,

    // ---- §3.6.3 human intervention ----
    /// Probability that a spoofed query dropped at a *filtered* border is
    /// nevertheless logged by an IDS and later resolved by a curious human
    /// (producing a long-lifetime query the analysis must discard).
    pub human_lookup_fraction: f64,
    /// Seconds after the original query at which the human lookup happens.
    pub human_lookup_delay_secs: u64,

    // ---- scale ----
    /// Global multiplier on each AS's carved /24 (and derived /64) count.
    /// `1.0` reproduces the historical address plan byte-for-byte; Internet-
    /// scale worlds shrink it so 62k ASes fit the simulator's IPv4 space
    /// (~14.3M /24s below the 224.0.0.0 multicast line).
    pub address_density: f64,
    /// Materialize the DITL traces as in-memory record vectors (`ditl2019`
    /// / `ditl2018`). The default; analyses that replay the raw trace need
    /// it. Internet-scale worlds turn it off: the 2019 trace is streamed
    /// straight into the deduplicated candidate-source list
    /// (`World::ditl_candidates`) and the 2018 trace is skipped, so the
    /// ~2.3 records/target trace never exists in memory.
    pub materialize_ditl: bool,

    // ---- engine ----
    /// Event budget for the simulation.
    pub max_events: u64,
    /// Event-scheduler implementation for every engine spawned over this
    /// world (heap oracle vs timing wheel; observationally identical).
    pub sched: bcd_netsim::SchedKind,
    /// Random loss probability on inter-AS links (fault injection; the
    /// methodology must stay sound under loss — resolvers retransmit and
    /// the analyses only ever under-count). This knob is a thin alias for
    /// ambient chaos loss: `build` folds it into the compiled
    /// [`bcd_netsim::FaultSchedule`], so lossy runs are deterministic
    /// across shard layouts.
    pub link_loss: f64,
    /// Seeded fault injection: compile a [`bcd_netsim::FaultSchedule`]
    /// from this profile and arm it in every spawned runtime.
    pub chaos: Option<bcd_netsim::ChaosConfig>,
    /// Capture packets into an in-memory trace with this capacity (for
    /// pcap export / debugging). Off by default — a full survey moves tens
    /// of millions of packets.
    pub trace_capacity: Option<usize>,
}

impl WorldConfig {
    /// The default scaled-down world: ~600 ASes, ~20k targets. A full
    /// survey over it runs in a few seconds in release mode.
    pub fn paper_shape(seed: u64) -> WorldConfig {
        WorldConfig {
            seed,
            n_as: 600,
            v6_as_fraction: 0.13,
            target_scale: 0.22,
            stale_target_fraction: 0.62,
            refuse_all_fraction: 0.30,
            ensure_responsive_prob: 0.90,
            v6_accept_multiplier: 1.5,
            v4_accept_multiplier: 0.80,
            forward_fraction_v4: 0.47,
            forward_fraction_v6: 0.16,
            forwarder_open_fraction: 0.74,
            qmin_fraction: 0.0016,
            qmin_halts_fraction: 0.55,
            middlebox_as_fraction: 0.02,
            subnet_savi_fraction: 0.22,
            fully_spoofable_fraction: 0.20,
            partial_pass_permille: (10, 150),
            private_filter_fraction: 0.80,
            loopback_filter_fraction: 0.995,
            loopback_filter_fraction_v6: 0.85,
            ds_filter_fraction_v4: 0.35,
            osav_fraction: 0.75,
            human_lookup_fraction: 0.00005,
            human_lookup_delay_secs: 7_200,
            address_density: 1.0,
            materialize_ditl: true,
            max_events: 500_000_000,
            sched: bcd_netsim::SchedKind::from_env(),
            link_loss: 0.0,
            chaos: None,
            trace_capacity: None,
        }
    }

    /// A tiny world for unit/integration tests (tens of ASes, hundreds of
    /// targets; runs in milliseconds even in debug builds).
    pub fn tiny(seed: u64) -> WorldConfig {
        WorldConfig {
            n_as: 40,
            target_scale: 0.05,
            qmin_fraction: 0.01,
            ..WorldConfig::paper_shape(seed)
        }
    }

    /// The full-population world: the paper's ~62k measured ASes, ~12M
    /// DITL candidate sources, and ~1M live resolver hosts. Tuned for
    /// *building* on CI hardware (struct-of-arrays topology, streamed DITL
    /// trace, shared resolver-config storage — see DESIGN.md); a full
    /// spoofing survey over it is a batch job, not a test.
    ///
    /// Calibration against [`WorldConfig::paper_shape`]:
    /// * `target_scale: 0.5` — the per-country `targets_per_as` means were
    ///   tuned for down-scaled worlds and overshoot ~2× at the full AS
    ///   count; 0.5 lands the 2019 candidate population at the paper's
    ///   ~12.1M unique sources (measured: ~11.9M at seed 2019).
    /// * `refuse_all_fraction: 0.06` — per-target live probability is
    ///   `accept + (1 − accept) · refuse_all` ≈ 9.5%, so ~12M targets
    ///   yield ~1.8M live hosts (the paper's ~1M-host order) while the
    ///   responsive share stays at §4.1's per-IP reachability.
    /// * `address_density: 0.35` — shrinks each AS's address plan so 62k
    ///   ASes fit the v4 unicast space (the allocator also switches to
    ///   packed /16 carving below 1.0); per-AS prefix counts stay ≥ 2 so
    ///   other-prefix spoof sources always exist.
    pub fn internet_scale(seed: u64) -> WorldConfig {
        WorldConfig {
            n_as: 62_000,
            target_scale: 0.5,
            refuse_all_fraction: 0.06,
            address_density: 0.35,
            materialize_ditl: false,
            ..WorldConfig::paper_shape(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = WorldConfig::paper_shape(1);
        assert!(c.n_as > 100);
        for f in [
            c.v6_as_fraction,
            c.stale_target_fraction,
            c.ensure_responsive_prob,
            c.forward_fraction_v4,
            c.forward_fraction_v6,
            c.forwarder_open_fraction,
            c.qmin_fraction,
            c.qmin_halts_fraction,
            c.middlebox_as_fraction,
            c.subnet_savi_fraction,
            c.fully_spoofable_fraction,
            c.private_filter_fraction,
            c.loopback_filter_fraction,
            c.osav_fraction,
            c.human_lookup_fraction,
        ] {
            assert!((0.0..=1.0).contains(&f));
        }
        let t = WorldConfig::tiny(1);
        assert!(t.n_as < c.n_as);
    }
}
