//! Synthetic DITL root-trace generation.
//!
//! The paper extracts its target list from the 2019 "Day in the Life"
//! root-server collection (§3.1) and compares port behaviour against the
//! 2018 collection (§5.2.2). We synthesize both traces from the generated
//! resolver population, with the same imperfections the paper has to cope
//! with:
//!
//! * **special-purpose sources** (the paper excluded ~4M),
//! * **unrouted sources** (36,027 excluded for having no announced route),
//! * **stale sources** — addresses that queried roots but are no longer
//!   resolvers at experiment time (the `live = false` targets),
//! * **spoofed sources** in the trace itself (§3.6.2's caveat).
//!
//! Substitution note (DESIGN.md): a warmup simulation through the real
//! root-server nodes produces the same record shape (see the integration
//! test `tests/ditl_via_root_servers.rs`); direct synthesis is used for
//! scale.

use crate::addressing::AddressAllocator;
use crate::profile::{Port2018, ResolverMeta};
use bcd_dnswire::Name;
use bcd_netsim::SimTime;
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::net::{IpAddr, Ipv4Addr};

/// One root-server query record (the fields the paper's pipelines read).
#[derive(Debug, Clone)]
pub struct DitlRecord {
    pub time: SimTime,
    pub src: IpAddr,
    pub src_port: u16,
    pub qname: Name,
}

/// 48 hours, the DITL collection window.
const WINDOW_SECS: u64 = 48 * 3_600;

/// Convert a root server's query log into DITL records — the path a real
/// collection takes (used by tests that run the warmup through the actual
/// simulated root servers rather than synthesizing the trace).
pub fn from_query_log(entries: &[bcd_dns::QueryLogEntry]) -> Vec<DitlRecord> {
    entries
        .iter()
        .map(|e| DitlRecord {
            time: e.time,
            src: e.src,
            src_port: e.src_port,
            qname: e.qname.clone(),
        })
        .collect()
}

fn random_qname(rng: &mut ChaCha8Rng, tag: &str, i: usize) -> Name {
    let tld = ["com", "net", "org", "io", "de"][rng.gen_range(0..5)];
    format!("w{i}.{tag}{}.{tld}", rng.gen_range(0u32..1_000_000))
        .parse()
        .unwrap()
}

/// The 2019 trace: every target appears 1–3 times, plus noise classes.
pub fn generate_2019(
    rng: &mut ChaCha8Rng,
    resolvers: &[ResolverMeta],
    alloc: &mut AddressAllocator,
) -> Vec<DitlRecord> {
    let mut out = Vec::with_capacity(resolvers.len() * 2);
    for (i, r) in resolvers.iter().enumerate() {
        let n = rng.gen_range(1..=3);
        for _ in 0..n {
            out.push(DitlRecord {
                time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                src: r.addr,
                src_port: rng.gen_range(1_024..=65_535),
                qname: random_qname(rng, "q", i),
            });
        }
    }

    // Special-purpose noise: ~25% extra records from unroutable space.
    let n_special = resolvers.len() / 4;
    for i in 0..n_special {
        let src: IpAddr = match rng.gen_range(0..4) {
            0 => IpAddr::V4(Ipv4Addr::new(10, rng.gen(), rng.gen(), rng.gen())),
            1 => IpAddr::V4(Ipv4Addr::new(192, 168, rng.gen(), rng.gen())),
            2 => IpAddr::V4(Ipv4Addr::new(127, 0, 0, rng.gen())),
            _ => format!("fc00::{:x}", rng.gen::<u16>()).parse().unwrap(),
        };
        out.push(DitlRecord {
            time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
            src,
            src_port: rng.gen_range(1_024..=65_535),
            qname: random_qname(rng, "s", i),
        });
    }

    // Unrouted-but-plausible noise: a /16 that is never announced (§3.1's
    // "no announced route" exclusion).
    let ghost_block = alloc.next_v4_16();
    let n_ghost = (resolvers.len() / 300).max(3);
    for i in 0..n_ghost {
        out.push(DitlRecord {
            time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
            src: ghost_block.nth(rng.gen_range(1..60_000)).unwrap(),
            src_port: rng.gen_range(1_024..=65_535),
            qname: random_qname(rng, "g", i),
        });
    }

    out.sort_by_key(|r| r.time);
    out
}

/// The 2018 trace, keyed to §5.2.2's three comparison outcomes.
///
/// * [`Port2018::FixedThen`] — ≥10 queries, all from the port the resolver
///   still uses today (its current fixed port),
/// * [`Port2018::VariedThen`] — ≥10 queries with varied source ports: the
///   resolver has since *regressed* to a fixed port,
/// * [`Port2018::Absent`] — too little data for a fair comparison (< 10
///   unique-name queries, none port-matching).
pub fn generate_2018(rng: &mut ChaCha8Rng, resolvers: &[ResolverMeta]) -> Vec<DitlRecord> {
    let mut out = Vec::new();
    for (i, r) in resolvers.iter().enumerate() {
        if !r.live {
            continue;
        }
        match r.port_2018 {
            Port2018::FixedThen => {
                // The port it is pinned to now; for resolvers we never get
                // to measure, any fixed port works — use a deterministic
                // pseudo-port derived from the index.
                let port = 1_024 + (i as u16 % 60_000);
                for _ in 0..rng.gen_range(10..15) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: port,
                        qname: random_qname(rng, "p", i),
                    });
                }
            }
            Port2018::VariedThen => {
                for _ in 0..rng.gen_range(10..15) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: rng.gen_range(1_024..=65_535),
                        qname: random_qname(rng, "p", i),
                    });
                }
            }
            Port2018::Absent => {
                // 0–3 queries: below the ≥10 threshold, ports random.
                for _ in 0..rng.gen_range(0..4) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: rng.gen_range(1_024..=65_535),
                        qname: random_qname(rng, "p", i),
                    });
                }
            }
        }
    }
    out.sort_by_key(|r| r.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use crate::config::WorldConfig;
    use bcd_netsim::prefix::special;

    #[test]
    fn trace_2019_contains_targets_and_noise() {
        let w = build::build(WorldConfig::tiny(21));
        let trace = &w.ditl2019;
        assert!(trace.len() >= w.resolvers.len());
        // All target addresses appear.
        let srcs: std::collections::HashSet<IpAddr> = trace.iter().map(|r| r.src).collect();
        for r in &w.resolvers {
            assert!(
                srcs.contains(&r.addr),
                "target {} missing from trace",
                r.addr
            );
        }
        // Noise classes present.
        assert!(
            trace.iter().any(|r| special::is_special_purpose(r.src)),
            "special-purpose noise expected"
        );
        assert!(
            trace
                .iter()
                .any(|r| !special::is_special_purpose(r.src)
                    && w.topo.routes().origin(r.src).is_none()),
            "unrouted noise expected"
        );
        // Sorted by time, inside the 48h window.
        for w2 in trace.windows(2) {
            assert!(w2[0].time <= w2[1].time);
        }
        assert!(trace.last().unwrap().time.as_secs() < WINDOW_SECS);
    }

    #[test]
    fn trace_2018_respects_port_behaviour_labels() {
        // The FixedThen label rides on the rare zero-range port class
        // (~1.3% of resolvers), so a default tiny world (a few hundred
        // resolvers) can legitimately contain none. Scale the AS count up
        // until the expected count is comfortably positive.
        let w = build::build(WorldConfig {
            n_as: 200,
            ..WorldConfig::tiny(22)
        });
        use std::collections::HashMap;
        let mut by_src: HashMap<IpAddr, Vec<u16>> = HashMap::new();
        for rec in &w.ditl2018 {
            by_src.entry(rec.src).or_default().push(rec.src_port);
        }
        let mut checked_fixed = 0;
        let mut checked_varied = 0;
        for r in &w.resolvers {
            let Some(ports) = by_src.get(&r.addr) else {
                continue;
            };
            match r.port_2018 {
                Port2018::FixedThen => {
                    assert!(ports.len() >= 10);
                    assert!(ports.windows(2).all(|p| p[0] == p[1]), "fixed ports vary");
                    checked_fixed += 1;
                }
                Port2018::VariedThen => {
                    assert!(ports.len() >= 10);
                    let unique: std::collections::HashSet<_> = ports.iter().collect();
                    assert!(unique.len() > 3, "varied resolver shows no variation");
                    checked_varied += 1;
                }
                Port2018::Absent => {
                    assert!(ports.len() < 10);
                }
            }
        }
        assert!(checked_fixed > 0 && checked_varied > 0);
    }
}
