//! Synthetic DITL root-trace generation.
//!
//! The paper extracts its target list from the 2019 "Day in the Life"
//! root-server collection (§3.1) and compares port behaviour against the
//! 2018 collection (§5.2.2). We synthesize both traces from the generated
//! resolver population, with the same imperfections the paper has to cope
//! with:
//!
//! * **special-purpose sources** (the paper excluded ~4M),
//! * **unrouted sources** (36,027 excluded for having no announced route),
//! * **stale sources** — addresses that queried roots but are no longer
//!   resolvers at experiment time (the `live = false` targets),
//! * **spoofed sources** in the trace itself (§3.6.2's caveat).
//!
//! Substitution note (DESIGN.md): a warmup simulation through the real
//! root-server nodes produces the same record shape (see the integration
//! test `tests/ditl_via_root_servers.rs`); direct synthesis is used for
//! scale.

use crate::addressing::AddressAllocator;
use crate::profile::{Port2018, ResolverMeta};
use bcd_dnswire::Name;
use bcd_netsim::{Prefix, SimTime};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::net::{IpAddr, Ipv4Addr};

/// One root-server query record (the fields the paper's pipelines read).
#[derive(Debug, Clone)]
pub struct DitlRecord {
    pub time: SimTime,
    pub src: IpAddr,
    pub src_port: u16,
    pub qname: Name,
}

/// 48 hours, the DITL collection window.
const WINDOW_SECS: u64 = 48 * 3_600;

/// Convert a root server's query log into DITL records — the path a real
/// collection takes (used by tests that run the warmup through the actual
/// simulated root servers rather than synthesizing the trace).
pub fn from_query_log(entries: &[bcd_dns::QueryLogEntry]) -> Vec<DitlRecord> {
    entries
        .iter()
        .map(|e| DitlRecord {
            time: e.time,
            src: e.src,
            src_port: e.src_port,
            qname: e.qname.clone(),
        })
        .collect()
}

/// Draw the qname's random components (always, so the RNG stream is
/// identical between materializing and streaming consumers) and build the
/// `Name` only when the caller wants one.
fn random_qname(rng: &mut ChaCha8Rng, tag: &str, i: usize, materialize: bool) -> Name {
    let tld = ["com", "net", "org", "io", "de"][rng.gen_range(0..5)];
    let n = rng.gen_range(0u32..1_000_000);
    if materialize {
        format!("w{i}.{tag}{n}.{tld}").parse().unwrap()
    } else {
        Name::root()
    }
}

/// Phase of the 2019 stream: targets, then the two noise classes.
enum Phase2019 {
    /// Resolver `i`; `left` records still owed for it (0 = count not yet
    /// drawn for this resolver).
    Targets {
        i: usize,
        left: u32,
    },
    Special {
        i: usize,
    },
    Ghost {
        i: usize,
    },
    Done,
}

/// Streaming generator for the 2019 trace: yields records in *generation*
/// order (not time order) without ever holding the trace in memory. The
/// RNG draw sequence is identical to the historical materializing
/// generator, so `generate_2019` (collect + time sort) and any streaming
/// consumer see byte-identical worlds downstream.
pub struct Ditl2019Stream<'a> {
    rng: &'a mut ChaCha8Rng,
    resolvers: &'a [ResolverMeta],
    ghost_block: Prefix,
    phase: Phase2019,
}

impl<'a> Ditl2019Stream<'a> {
    /// Advance the state machine. `materialize_qnames = false` performs the
    /// qname draws but skips building the `Name` (for consumers that only
    /// read source addresses, e.g. target extraction at Internet scale).
    fn next_record(&mut self, materialize_qnames: bool) -> Option<DitlRecord> {
        loop {
            match self.phase {
                Phase2019::Targets { i, left } => {
                    if i >= self.resolvers.len() {
                        self.phase = Phase2019::Special { i: 0 };
                        continue;
                    }
                    if left == 0 {
                        let n = self.rng.gen_range(1..=3);
                        self.phase = Phase2019::Targets { i, left: n };
                        continue;
                    }
                    let rec = DitlRecord {
                        time: SimTime::from_secs(self.rng.gen_range(0..WINDOW_SECS)),
                        src: self.resolvers[i].addr,
                        src_port: self.rng.gen_range(1_024..=65_535),
                        qname: random_qname(self.rng, "q", i, materialize_qnames),
                    };
                    self.phase = if left == 1 {
                        Phase2019::Targets { i: i + 1, left: 0 }
                    } else {
                        Phase2019::Targets { i, left: left - 1 }
                    };
                    return Some(rec);
                }
                Phase2019::Special { i } => {
                    // Special-purpose noise: ~25% extra records from
                    // unroutable space.
                    if i >= self.resolvers.len() / 4 {
                        self.phase = Phase2019::Ghost { i: 0 };
                        continue;
                    }
                    let src: IpAddr = match self.rng.gen_range(0..4) {
                        0 => IpAddr::V4(Ipv4Addr::new(
                            10,
                            self.rng.gen(),
                            self.rng.gen(),
                            self.rng.gen(),
                        )),
                        1 => IpAddr::V4(Ipv4Addr::new(192, 168, self.rng.gen(), self.rng.gen())),
                        2 => IpAddr::V4(Ipv4Addr::new(127, 0, 0, self.rng.gen())),
                        _ => format!("fc00::{:x}", self.rng.gen::<u16>())
                            .parse()
                            .unwrap(),
                    };
                    let rec = DitlRecord {
                        time: SimTime::from_secs(self.rng.gen_range(0..WINDOW_SECS)),
                        src,
                        src_port: self.rng.gen_range(1_024..=65_535),
                        qname: random_qname(self.rng, "s", i, materialize_qnames),
                    };
                    self.phase = Phase2019::Special { i: i + 1 };
                    return Some(rec);
                }
                Phase2019::Ghost { i } => {
                    // Unrouted-but-plausible noise from the never-announced
                    // ghost /16 (§3.1's "no announced route" exclusion).
                    if i >= (self.resolvers.len() / 300).max(3) {
                        self.phase = Phase2019::Done;
                        continue;
                    }
                    let rec = DitlRecord {
                        time: SimTime::from_secs(self.rng.gen_range(0..WINDOW_SECS)),
                        src: self.ghost_block.nth(self.rng.gen_range(1..60_000)).unwrap(),
                        src_port: self.rng.gen_range(1_024..=65_535),
                        qname: random_qname(self.rng, "g", i, materialize_qnames),
                    };
                    self.phase = Phase2019::Ghost { i: i + 1 };
                    return Some(rec);
                }
                Phase2019::Done => return None,
            }
        }
    }
}

impl<'a> Iterator for Ditl2019Stream<'a> {
    type Item = DitlRecord;

    fn next(&mut self) -> Option<DitlRecord> {
        self.next_record(true)
    }
}

/// Stream the 2019 trace: every target appears 1–3 times, then the
/// special-purpose and unrouted noise classes. `ghost_block` must be a
/// freshly carved, never-announced /16 (the caller owns the allocator so
/// the carve lands at the same allocator position as the historical
/// in-generator carve).
pub fn stream_2019<'a>(
    rng: &'a mut ChaCha8Rng,
    resolvers: &'a [ResolverMeta],
    ghost_block: Prefix,
) -> Ditl2019Stream<'a> {
    Ditl2019Stream {
        rng,
        resolvers,
        ghost_block,
        phase: Phase2019::Targets { i: 0, left: 0 },
    }
}

/// The materialized 2019 trace (collect the stream, sort by time).
pub fn generate_2019(
    rng: &mut ChaCha8Rng,
    resolvers: &[ResolverMeta],
    alloc: &mut AddressAllocator,
) -> Vec<DitlRecord> {
    let ghost_block = alloc.next_v4_16();
    let mut out: Vec<DitlRecord> = stream_2019(rng, resolvers, ghost_block).collect();
    out.sort_by_key(|r| r.time);
    out
}

/// The streaming extraction front half: generate the 2019 trace, keep only
/// each record's source address, de-duplicate. Consumes the identical RNG
/// sequence as [`generate_2019`] but never materializes records or qnames,
/// so an Internet-scale world can feed target extraction in O(unique
/// sources) memory. Returns the sorted unique source list; special-purpose
/// and unrouted exclusion stay with the analysis side, which also counts
/// them.
pub fn candidate_sources_2019(
    rng: &mut ChaCha8Rng,
    resolvers: &[ResolverMeta],
    alloc: &mut AddressAllocator,
) -> Vec<IpAddr> {
    let ghost_block = alloc.next_v4_16();
    let mut stream = stream_2019(rng, resolvers, ghost_block);
    let mut srcs: Vec<IpAddr> = Vec::with_capacity(resolvers.len() + resolvers.len() / 3);
    while let Some(rec) = stream.next_record(false) {
        srcs.push(rec.src);
    }
    srcs.sort_unstable();
    srcs.dedup();
    srcs
}

/// The 2018 trace, keyed to §5.2.2's three comparison outcomes.
///
/// * [`Port2018::FixedThen`] — ≥10 queries, all from the port the resolver
///   still uses today (its current fixed port),
/// * [`Port2018::VariedThen`] — ≥10 queries with varied source ports: the
///   resolver has since *regressed* to a fixed port,
/// * [`Port2018::Absent`] — too little data for a fair comparison (< 10
///   unique-name queries, none port-matching).
pub fn generate_2018(rng: &mut ChaCha8Rng, resolvers: &[ResolverMeta]) -> Vec<DitlRecord> {
    let mut out = Vec::new();
    for (i, r) in resolvers.iter().enumerate() {
        if !r.live {
            continue;
        }
        match r.port_2018 {
            Port2018::FixedThen => {
                // The port it is pinned to now; for resolvers we never get
                // to measure, any fixed port works — use a deterministic
                // pseudo-port derived from the index.
                let port = 1_024 + (i as u16 % 60_000);
                for _ in 0..rng.gen_range(10..15) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: port,
                        qname: random_qname(rng, "p", i, true),
                    });
                }
            }
            Port2018::VariedThen => {
                for _ in 0..rng.gen_range(10..15) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: rng.gen_range(1_024..=65_535),
                        qname: random_qname(rng, "p", i, true),
                    });
                }
            }
            Port2018::Absent => {
                // 0–3 queries: below the ≥10 threshold, ports random.
                for _ in 0..rng.gen_range(0..4) {
                    out.push(DitlRecord {
                        time: SimTime::from_secs(rng.gen_range(0..WINDOW_SECS)),
                        src: r.addr,
                        src_port: rng.gen_range(1_024..=65_535),
                        qname: random_qname(rng, "p", i, true),
                    });
                }
            }
        }
    }
    out.sort_by_key(|r| r.time);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build;
    use crate::config::WorldConfig;
    use bcd_netsim::prefix::special;

    #[test]
    fn trace_2019_contains_targets_and_noise() {
        let w = build::build(WorldConfig::tiny(21));
        let trace = &w.ditl2019;
        assert!(trace.len() >= w.resolvers.len());
        // All target addresses appear.
        let srcs: std::collections::HashSet<IpAddr> = trace.iter().map(|r| r.src).collect();
        for r in &w.resolvers {
            assert!(
                srcs.contains(&r.addr),
                "target {} missing from trace",
                r.addr
            );
        }
        // Noise classes present.
        assert!(
            trace.iter().any(|r| special::is_special_purpose(r.src)),
            "special-purpose noise expected"
        );
        assert!(
            trace
                .iter()
                .any(|r| !special::is_special_purpose(r.src)
                    && w.topo.routes().origin(r.src).is_none()),
            "unrouted noise expected"
        );
        // Sorted by time, inside the 48h window.
        for w2 in trace.windows(2) {
            assert!(w2[0].time <= w2[1].time);
        }
        assert!(trace.last().unwrap().time.as_secs() < WINDOW_SECS);
    }

    #[test]
    fn trace_2018_respects_port_behaviour_labels() {
        // The FixedThen label rides on the rare zero-range port class
        // (~1.3% of resolvers), so a default tiny world (a few hundred
        // resolvers) can legitimately contain none. Scale the AS count up
        // until the expected count is comfortably positive.
        let w = build::build(WorldConfig {
            n_as: 200,
            ..WorldConfig::tiny(22)
        });
        use std::collections::HashMap;
        let mut by_src: HashMap<IpAddr, Vec<u16>> = HashMap::new();
        for rec in &w.ditl2018 {
            by_src.entry(rec.src).or_default().push(rec.src_port);
        }
        let mut checked_fixed = 0;
        let mut checked_varied = 0;
        for r in &w.resolvers {
            let Some(ports) = by_src.get(&r.addr) else {
                continue;
            };
            match r.port_2018 {
                Port2018::FixedThen => {
                    assert!(ports.len() >= 10);
                    assert!(ports.windows(2).all(|p| p[0] == p[1]), "fixed ports vary");
                    checked_fixed += 1;
                }
                Port2018::VariedThen => {
                    assert!(ports.len() >= 10);
                    let unique: std::collections::HashSet<_> = ports.iter().collect();
                    assert!(unique.len() > 3, "varied resolver shows no variation");
                    checked_varied += 1;
                }
                Port2018::Absent => {
                    assert!(ports.len() < 10);
                }
            }
        }
        assert!(checked_fixed > 0 && checked_varied > 0);
    }
}
