//! # bcd-worldgen — the seeded synthetic Internet
//!
//! Builds the world the experiment measures: autonomous systems with
//! announced IPv4/IPv6 prefixes and border policies, recursive resolvers
//! with realistic behaviour mixes, the experiment's own DNS estate (root,
//! `org`, `dns-lab.org` + follow-up zones), public DNS services,
//! middleboxes, and the DITL-style root-trace target lists.
//!
//! Every distribution is calibrated to the paper's published marginals
//! (see `bcd-geo` for the per-country numbers and [`config::WorldConfig`]
//! for the behaviour mixes); every sample comes from one seeded RNG, so a
//! given `(seed, config)` always produces the identical world.

pub mod addressing;
pub mod build;
pub mod config;
pub mod ditl;
pub mod profile;

pub use build::{AuthEstate, SavTruth, ScannerSlot, World, WorldRuntime, LOG_EXPERIMENT, LOG_ROOT};
pub use config::WorldConfig;
pub use ditl::DitlRecord;
pub use profile::{AclKind, Port2018, PortClass, ResolverMeta};
