//! Per-resolver behaviour profiles and the ground-truth registry.
//!
//! Each *target* address (an entry in the DITL-derived target list) carries
//! a [`ResolverMeta`] recording what the world generator actually put
//! there. Analyses never read this — they infer everything from packets,
//! like the paper did — but tests and the EXPERIMENTS report join against
//! it to validate inference quality.

use bcd_netsim::Asn;
use bcd_osmodel::{DnsSoftware, Os, PortAllocator};
use rand::Rng;
use rand_chacha::ChaCha8Rng;
use std::net::IpAddr;

/// Truth label for a resolver's source-port behaviour, aligned with the
/// Table 4 bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortClass {
    /// Range 0: a single source port (§5.2.1's 3,810 resolvers).
    Zero,
    /// Sequential allocation in a 1–200 window (§5.2.3).
    SeqSmall,
    /// Odd small pools landing in the 201–940 band.
    OddLow,
    /// Windows DNS 2008 R2+ (2,500-port pool, band 941–2,488).
    Windows,
    /// Odd pools in the 2,489–6,124 band.
    OddMid,
    /// FreeBSD's IANA pool (band 6,125–16,331).
    FreeBsdPool,
    /// Linux's 32768–61000 pool (band 16,332–28,222).
    LinuxPool,
    /// The full unprivileged range (band 28,223–65,536).
    FullRange,
}

impl PortClass {
    /// All classes with their sampling weights among *direct* responsive
    /// resolvers — the Table 4 "Total" column normalized (3,810 / 244 / 144
    /// / 13,692 / 366 / 11,462 / 89,495 / 178,773 of 297,986).
    pub const WEIGHTED: [(PortClass, f64); 8] = [
        (PortClass::Zero, 0.01279),
        (PortClass::SeqSmall, 0.00082),
        (PortClass::OddLow, 0.00048),
        (PortClass::Windows, 0.04595),
        (PortClass::OddMid, 0.00123),
        (PortClass::FreeBsdPool, 0.03847),
        (PortClass::LinuxPool, 0.30033),
        (PortClass::FullRange, 0.59993),
    ];

    /// Sample a class by the Table 4 weights.
    pub fn sample(rng: &mut ChaCha8Rng) -> PortClass {
        let mut roll: f64 = rng.gen();
        for (class, w) in PortClass::WEIGHTED {
            if roll < w {
                return class;
            }
            roll -= w;
        }
        PortClass::FullRange
    }

    /// Open-resolver probability within this band (Table 4's Open column
    /// over its Total: the striking signal that Windows-band resolvers are
    /// 89% open while Linux-band ones are 97% closed).
    pub fn open_probability(self) -> f64 {
        match self {
            PortClass::Zero => 0.411,
            PortClass::SeqSmall => 0.824,
            PortClass::OddLow => 0.694,
            PortClass::Windows => 0.889,
            PortClass::OddMid => 0.702,
            PortClass::FreeBsdPool => 0.101,
            PortClass::LinuxPool => 0.027,
            PortClass::FullRange => 0.066,
        }
    }
}

/// How this resolver allocated source ports in the 2018 DITL collection
/// (§5.2.2's longitudinal comparison).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Port2018 {
    /// Already pinned to a single port 18 months earlier (paper: 51%).
    FixedThen,
    /// Showed source-port variation then — the vulnerability *regressed*
    /// (paper: 25%).
    VariedThen,
    /// Not enough 2018 data to compare (paper: 24%).
    Absent,
}

/// ACL shape for closed resolvers — what decides *which* spoofed-source
/// categories a query can ride in on (Table 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AclKind {
    /// Open to everyone.
    Open,
    /// Allow the whole AS's announced prefixes.
    AsWide,
    /// Allow only the resolver's own /24 (IPv4) or /64 (IPv6).
    SameSubnet,
    /// Allow only the resolver's own address.
    SelfOnly,
    /// AS prefixes plus RFC 1918 / ULA space (NATed internal clients).
    AsWidePlusPrivate,
    /// Only RFC 1918 / ULA space (a resolver meant for NATed clients only).
    PrivateOnly,
    /// Only localhost (`allow-query { localhost; }`) — reachable solely by
    /// loopback-source spoofs.
    LocalhostOnly,
    /// An allow-list that matches nothing we can spoof (live but always
    /// REFUSED — the §3.8 anecdotes).
    NoMatch,
}

impl AclKind {
    /// Sample an ACL for a *closed*, responsive resolver. Weights are
    /// calibrated against Table 3's category-exclusive columns.
    pub fn sample_closed(rng: &mut ChaCha8Rng) -> AclKind {
        let roll: f64 = rng.gen();
        if roll < 0.555 {
            AclKind::AsWide
        } else if roll < 0.855 {
            AclKind::SameSubnet
        } else if roll < 0.905 {
            AclKind::SelfOnly
        } else if roll < 0.975 {
            AclKind::AsWidePlusPrivate
        } else if roll < 0.990 {
            AclKind::PrivateOnly
        } else {
            AclKind::LocalhostOnly
        }
    }
}

/// Ground truth for one target address.
#[derive(Debug, Clone)]
pub struct ResolverMeta {
    /// The target address (what the DITL trace exposes).
    pub addr: IpAddr,
    /// Second-family address for dual-stack hosts.
    pub other_addr: Option<IpAddr>,
    pub asn: Asn,
    /// A host exists at this address.
    pub live: bool,
    /// Expected to *handle* (resolve) at least one matching spoofed query.
    pub responsive: bool,
    pub open: bool,
    pub forwards: bool,
    pub qmin: bool,
    pub qmin_halts: bool,
    pub os: Os,
    pub software: DnsSoftware,
    pub port_class: PortClass,
    pub p0f_visible: bool,
    pub acl: AclKind,
    pub port_2018: Port2018,
}

/// Everything sampled for one responsive resolver's port/OS identity.
pub struct PortIdentity {
    pub class: PortClass,
    pub software: DnsSoftware,
    pub os: Os,
    pub allocator: PortAllocator,
    pub p0f_visible: bool,
}

/// Sample the coupled (port class, software, OS, allocator, p0f
/// visibility) identity of a direct responsive resolver. The couplings
/// implement §5.3's findings:
///
/// * zero-range = antique/misconfigured software: 34% pinned to port 53,
///   old Windows DNS for ~20% (p0f: 12% of the band looked Windows), and
///   20% of the band carries the BaiduSpider TCP profile,
/// * the Windows band is Windows DNS on Windows Server, 89% p0f-visible,
/// * the FreeBSD/Linux bands are OS-default pools (BIND 9.9+/Knot),
/// * the full-range band is version-ambiguous (BIND 9.5.2+/Unbound/
///   PowerDNS — §5.3.3's unresolvable void), mostly p0f-invisible.
pub fn sample_port_identity(rng: &mut ChaCha8Rng) -> PortIdentity {
    let class = PortClass::sample(rng);
    sample_identity_for_class(rng, class)
}

/// As [`sample_port_identity`], with the band fixed (tests and ablations).
pub fn sample_identity_for_class(rng: &mut ChaCha8Rng, class: PortClass) -> PortIdentity {
    match class {
        PortClass::Zero => {
            let roll: f64 = rng.gen();
            let (software, os) = if roll < 0.34 {
                let os = if rng.gen_bool(0.25) {
                    Os::BaiduCrawler
                } else {
                    Os::LinuxOld
                };
                (DnsSoftware::FixedPort53, os)
            } else if roll < 0.80 {
                let os = if rng.gen_bool(0.30) {
                    Os::BaiduCrawler
                } else if rng.gen_bool(0.5) {
                    Os::LinuxModern
                } else {
                    Os::LinuxOld
                };
                (DnsSoftware::FixedPortOther, os)
            } else {
                let os = if rng.gen_bool(0.6) {
                    Os::Windows2003
                } else {
                    Os::Windows2008
                };
                (DnsSoftware::WindowsDnsOld, os)
            };
            let p0f_visible = match os {
                Os::BaiduCrawler => true,
                Os::Windows2003 | Os::Windows2008 => rng.gen_bool(0.60),
                _ => rng.gen_bool(0.03),
            };
            PortIdentity {
                class,
                software,
                os,
                allocator: software.allocator(os, rng),
                p0f_visible,
            }
        }
        PortClass::SeqSmall => {
            let os = if rng.gen_bool(0.70) {
                Os::WindowsModern
            } else {
                Os::LinuxOld
            };
            PortIdentity {
                class,
                software: DnsSoftware::SequentialSmall,
                os,
                allocator: DnsSoftware::SequentialSmall.allocator(os, rng),
                p0f_visible: if os.is_windows() {
                    rng.gen_bool(0.93)
                } else {
                    rng.gen_bool(0.25)
                },
            }
        }
        PortClass::OddLow | PortClass::OddMid => {
            let os = if rng.gen_bool(0.60) {
                Os::WindowsModern
            } else {
                Os::LinuxModern
            };
            let size = if class == PortClass::OddLow {
                rng.gen_range(260..920)
            } else {
                rng.gen_range(2_800..5_900)
            };
            let lo: u16 = rng.gen_range(1_024..=(65_535 - size as u16));
            PortIdentity {
                class,
                software: DnsSoftware::FixedPortOther, // closest label: custom config
                os,
                allocator: PortAllocator::uniform(lo, size),
                p0f_visible: if os.is_windows() {
                    rng.gen_bool(0.85)
                } else {
                    rng.gen_bool(0.05)
                },
            }
        }
        PortClass::Windows => {
            let os = Os::WindowsModern;
            PortIdentity {
                class,
                software: DnsSoftware::WindowsDnsModern,
                os,
                allocator: DnsSoftware::WindowsDnsModern.allocator(os, rng),
                p0f_visible: rng.gen_bool(0.885),
            }
        }
        PortClass::FreeBsdPool => {
            let os = Os::FreeBsd;
            let software = if rng.gen_bool(0.8) {
                DnsSoftware::Bind99Plus
            } else {
                DnsSoftware::Knot32
            };
            PortIdentity {
                class,
                software,
                os,
                allocator: software.allocator(os, rng),
                p0f_visible: rng.gen_bool(0.05),
            }
        }
        PortClass::LinuxPool => {
            let os = if rng.gen_bool(0.95) {
                Os::LinuxModern
            } else {
                Os::LinuxOld
            };
            let software = if rng.gen_bool(0.8) {
                DnsSoftware::Bind99Plus
            } else {
                DnsSoftware::Knot32
            };
            PortIdentity {
                class,
                software,
                os,
                allocator: software.allocator(os, rng),
                p0f_visible: rng.gen_bool(0.009),
            }
        }
        PortClass::FullRange => {
            let roll: f64 = rng.gen();
            let (software, os) = if roll < 0.40 {
                (DnsSoftware::Unbound19, Os::LinuxModern)
            } else if roll < 0.70 {
                (DnsSoftware::Bind952To988, Os::LinuxModern)
            } else if roll < 0.85 {
                (DnsSoftware::PowerDns42, Os::LinuxModern)
            } else if roll < 0.94 {
                // BIND 9.9+ on Windows uses the full unprivileged range —
                // the §5.3.2 caveat that hides Windows from the port model.
                (DnsSoftware::Bind99Plus, Os::WindowsModern)
            } else if roll < 0.99 {
                (DnsSoftware::Unbound19, Os::LinuxOld)
            } else {
                (DnsSoftware::Bind950, Os::LinuxModern)
            };
            let p0f_visible = if os.is_windows() {
                rng.gen_bool(0.16)
            } else {
                rng.gen_bool(0.045)
            };
            PortIdentity {
                class,
                software,
                os,
                allocator: software.allocator(os, rng),
                p0f_visible,
            }
        }
    }
}

/// Sample the 2018 port behaviour conditioned on the current class
/// (§5.2.2: of the *currently* zero-range population, 51% were already
/// fixed, 25% varied, 24% absent).
pub fn sample_port_2018(rng: &mut ChaCha8Rng, class: PortClass) -> Port2018 {
    let roll: f64 = rng.gen();
    if class == PortClass::Zero {
        if roll < 0.51 {
            Port2018::FixedThen
        } else if roll < 0.76 {
            Port2018::VariedThen
        } else {
            Port2018::Absent
        }
    } else {
        // Non-vulnerable resolvers: mostly unchanged, some absent.
        if roll < 0.75 {
            Port2018::VariedThen
        } else {
            Port2018::Absent
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(7)
    }

    #[test]
    fn class_weights_sum_to_one() {
        let total: f64 = PortClass::WEIGHTED.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-3, "{total}");
    }

    #[test]
    fn sampling_respects_weights() {
        let mut r = rng();
        let n = 200_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(PortClass::sample(&mut r)).or_insert(0u32) += 1;
        }
        let frac = |c: PortClass| counts.get(&c).copied().unwrap_or(0) as f64 / n as f64;
        assert!((frac(PortClass::FullRange) - 0.600).abs() < 0.01);
        assert!((frac(PortClass::LinuxPool) - 0.300).abs() < 0.01);
        assert!((frac(PortClass::Windows) - 0.046).abs() < 0.005);
        assert!((frac(PortClass::Zero) - 0.0128).abs() < 0.003);
    }

    #[test]
    fn identities_have_consistent_pool_sizes() {
        let mut r = rng();
        for _ in 0..2_000 {
            let id = sample_port_identity(&mut r);
            let size = id.allocator.pool_size();
            match id.class {
                PortClass::Zero => assert_eq!(size, 1),
                PortClass::SeqSmall => assert!((2..=200).contains(&size)),
                PortClass::OddLow => assert!((201..=941).contains(&size)),
                PortClass::Windows => assert_eq!(size, 2_500),
                PortClass::OddMid => assert!((2_489..=6_125).contains(&size)),
                PortClass::FreeBsdPool => assert_eq!(size, 16_383),
                PortClass::LinuxPool => assert_eq!(size, 28_232),
                PortClass::FullRange => assert!(size == 64_511 || size == 8),
            }
        }
    }

    #[test]
    fn windows_band_is_windows_dns_and_mostly_visible() {
        let mut r = rng();
        let mut visible = 0;
        let n = 5_000;
        for _ in 0..n {
            let id = sample_identity_for_class(&mut r, PortClass::Windows);
            assert_eq!(id.software, DnsSoftware::WindowsDnsModern);
            assert!(id.os.is_windows());
            if id.p0f_visible {
                visible += 1;
            }
        }
        let frac = visible as f64 / n as f64;
        assert!((frac - 0.885).abs() < 0.02, "{frac}");
    }

    #[test]
    fn zero_band_port53_share() {
        let mut r = rng();
        let mut p53 = 0;
        let n = 10_000;
        for _ in 0..n {
            let id = sample_identity_for_class(&mut r, PortClass::Zero);
            assert_eq!(id.allocator.pool_size(), 1);
            if let PortAllocator::Fixed(53) = id.allocator {
                p53 += 1;
            }
        }
        // 34% explicit port 53 (the §5.2.1 observation).
        let frac = p53 as f64 / n as f64;
        assert!((frac - 0.34).abs() < 0.03, "{frac}");
    }

    #[test]
    fn acl_sampling_produces_all_kinds() {
        let mut r = rng();
        let mut kinds = std::collections::HashSet::new();
        for _ in 0..5_000 {
            kinds.insert(format!("{:?}", AclKind::sample_closed(&mut r)));
        }
        for k in [
            "AsWide",
            "SameSubnet",
            "SelfOnly",
            "AsWidePlusPrivate",
            "PrivateOnly",
            "LocalhostOnly",
        ] {
            assert!(kinds.contains(k), "missing {k}");
        }
    }

    #[test]
    fn port_2018_mix_for_zero_band() {
        let mut r = rng();
        let n = 20_000;
        let mut fixed = 0;
        let mut varied = 0;
        for _ in 0..n {
            match sample_port_2018(&mut r, PortClass::Zero) {
                Port2018::FixedThen => fixed += 1,
                Port2018::VariedThen => varied += 1,
                Port2018::Absent => {}
            }
        }
        assert!((fixed as f64 / n as f64 - 0.51).abs() < 0.02);
        assert!((varied as f64 / n as f64 - 0.25).abs() < 0.02);
    }
}
