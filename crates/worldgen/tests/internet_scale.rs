//! Internet-scale smoke test: build the full `internet_scale` world — the
//! paper's ~62k measured ASes and ~12M DITL candidate sources — and check
//! that (a) the Table 1/2 marginals survive the scale-up and (b) the build
//! fits CI-class memory.
//!
//! The test doubles as the scale profiler: each stage records a
//! [`bcd_obs::RunProfile`] phase with the process peak-RSS watermark
//! stamped at completion, the breakdown prints with `--nocapture`, and
//! `BCD_SCALE_PROFILE=path.jsonl` exports it for the CI artifact — so a
//! memory blow-up names the phase that allocated, not just the total.
//!
//! Ignored by default: this is a release-mode batch job (`cargo test -r
//! -p bcd-worldgen -- --ignored internet_scale`), not part of tier-1. The
//! CI `scale-smoke` job runs it.

use bcd_obs::{RunObservation, RunProfile};
use bcd_worldgen::{build, WorldConfig};
use std::time::Instant;

/// Peak resident set size of this process in GiB (`VmHWM` from
/// `/proc/self/status`). Linux-only, like the CI runner.
fn peak_rss_gib() -> f64 {
    let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))
        .and_then(|l| l.split_whitespace().nth(1))
        .expect("VmHWM line")
        .parse()
        .expect("VmHWM value");
    kb / (1024.0 * 1024.0)
}

#[test]
#[ignore = "release-mode batch job: builds the full 62k-AS world"]
fn internet_scale_world_builds_within_budget() {
    let mut profile = RunProfile::new();
    let t0 = Instant::now();
    let w = profile.time("worldgen-build", || {
        build::build(WorldConfig::internet_scale(2019))
    });
    let build_secs = t0.elapsed().as_secs_f64();

    // ---- Table 1 shape: population counts at the paper's order of
    // magnitude. Bands are generous — these are scale checks, not the
    // calibrated-marginal checks (marginals.rs covers those densely).
    let t_checks = Instant::now();
    assert_eq!(w.measured_asns.len(), 62_000);
    assert!(
        (8_000_000..=16_000_000).contains(&w.ditl_candidates.len()),
        "candidate sources: {}",
        w.ditl_candidates.len()
    );
    assert!(
        w.ditl2019.is_empty() && w.ditl2018.is_empty(),
        "internet_scale must stream, not materialize, the DITL traces"
    );
    assert!(
        w.ditl_candidates.windows(2).all(|p| p[0] < p[1]),
        "candidates must arrive deduplicated and sorted"
    );
    let n_targets = w.resolvers.len();
    assert!(
        (8_000_000..=16_000_000).contains(&n_targets),
        "targets: {n_targets}"
    );

    // ---- Table 2 / §3.6.2 shape: live-host population near the paper's
    // ~1M, responsive share at per-IP reachability order. At full
    // population the stale share is ~90% — ~12M DITL sources against ~1M
    // hosts still alive at scan time is exactly the churn gap the paper
    // leans on (unlike paper_shape, which inflates the live share so a
    // small world still has measurable populations).
    let live = w.resolvers.iter().filter(|r| r.live).count();
    let responsive = w.resolvers.iter().filter(|r| r.responsive).count();
    assert!((600_000..=1_800_000).contains(&live), "live hosts: {live}");
    assert!(
        responsive > 0 && responsive < live,
        "responsive: {responsive}"
    );
    let stale_frac = w.resolvers.iter().filter(|r| !r.live).count() as f64 / n_targets as f64;
    assert!(
        (0.80..0.97).contains(&stale_frac),
        "stale fraction {stale_frac:.3}"
    );
    let v6 = w.resolvers.iter().filter(|r| r.addr.is_ipv6()).count();
    assert!(v6 > 100_000, "v6 targets: {v6}");
    profile.record("marginal-checks", t_checks.elapsed());

    // ---- host table consistency: one simulated host per live target plus
    // shared infrastructure; the topology index must resolve a sample.
    let t_index = Instant::now();
    assert!(
        w.topo.host_count() >= live,
        "host table smaller than live set"
    );
    for r in w.resolvers.iter().step_by(1_000_000) {
        assert_eq!(w.meta_of(r.addr).map(|m| m.addr), Some(r.addr));
    }
    profile.record("host-index-probe", t_index.elapsed());

    // ---- scale profile: per-phase wall + RSS-watermark breakdown. The
    // watermark is monotone, so the first phase whose rss_peak jumps is
    // the one that allocated.
    for p in &profile.phases {
        let rss_gib = p
            .rss_peak_kib
            .map(|k| k as f64 / (1024.0 * 1024.0))
            .unwrap_or(f64::NAN);
        eprintln!(
            "scale-profile: {:<16} {:>8.2}s  rss-peak {rss_gib:.2} GiB",
            p.name,
            p.wall.as_secs_f64()
        );
        assert!(
            p.rss_peak_kib.is_some(),
            "VmHWM must be readable on the Linux CI runner"
        );
    }
    if let Ok(path) = std::env::var("BCD_SCALE_PROFILE") {
        let obs = RunObservation {
            seed: 2019,
            shards: 1,
            profile: profile.clone(),
            ..RunObservation::default()
        };
        obs.write_jsonl(std::path::Path::new(&path))
            .expect("write BCD_SCALE_PROFILE export");
        eprintln!("scale-profile: exported to {path}");
    }

    // ---- resource budget: the acceptance bar is < 8 GiB peak RSS.
    let rss = peak_rss_gib();
    eprintln!(
        "internet_scale: built in {build_secs:.1}s, peak RSS {rss:.2} GiB, \
         {n_targets} targets, {live} live, {} candidates",
        w.ditl_candidates.len()
    );
    assert!(rss < 8.0, "peak RSS {rss:.2} GiB exceeds the 8 GiB budget");
}
