//! Marginal validation: a generated world's population mixes must match the
//! calibration the paper's published numbers dictate (within sampling
//! noise). This is what makes the downstream reproduction an honest one —
//! the analyses rediscover these numbers from packets; here we check the
//! world actually embodies them.

use bcd_worldgen::{build, AclKind, PortClass, WorldConfig};

fn big_world() -> build::World {
    build::build(WorldConfig {
        n_as: 400,
        target_scale: 0.25,
        ..WorldConfig::paper_shape(77)
    })
}

#[test]
fn port_class_mix_matches_table4_weights() {
    let w = big_world();
    let direct: Vec<_> = w
        .resolvers
        .iter()
        .filter(|r| r.responsive && !r.forwards)
        .collect();
    assert!(direct.len() > 400, "population too small: {}", direct.len());
    let frac = |class: PortClass| {
        direct.iter().filter(|r| r.port_class == class).count() as f64 / direct.len() as f64
    };
    // Table 4 weights with generous tolerances for sampling noise.
    assert!((frac(PortClass::FullRange) - 0.60).abs() < 0.06);
    assert!((frac(PortClass::LinuxPool) - 0.30).abs() < 0.06);
    assert!((frac(PortClass::Windows) - 0.046).abs() < 0.03);
    assert!(frac(PortClass::Zero) < 0.05);
}

#[test]
fn forward_fractions_match_config() {
    let w = big_world();
    let resp_v4: Vec<_> = w
        .resolvers
        .iter()
        .filter(|r| r.responsive && !r.addr.is_ipv6())
        .collect();
    let fwd = resp_v4.iter().filter(|r| r.forwards).count() as f64 / resp_v4.len() as f64;
    assert!(
        (fwd - w.cfg.forward_fraction_v4).abs() < 0.06,
        "v4 forward fraction {fwd}"
    );
    let resp_v6: Vec<_> = w
        .resolvers
        .iter()
        .filter(|r| r.responsive && r.addr.is_ipv6())
        .collect();
    if resp_v6.len() > 50 {
        let fwd6 = resp_v6.iter().filter(|r| r.forwards).count() as f64 / resp_v6.len() as f64;
        assert!(
            (fwd6 - w.cfg.forward_fraction_v6).abs() < 0.10,
            "v6 forward fraction {fwd6}"
        );
    }
}

#[test]
fn every_no_dsav_as_with_targets_usually_has_a_responsive_resolver() {
    let w = big_world();
    let mut with_targets = 0;
    let mut with_responsive = 0;
    for &asn in &w.measured_asns {
        if !w.truly_lacks_dsav(asn) {
            continue;
        }
        let targets: Vec<_> = w.resolvers.iter().filter(|r| r.asn == asn).collect();
        if targets.is_empty() {
            continue;
        }
        with_targets += 1;
        if targets.iter().any(|r| r.responsive) {
            with_responsive += 1;
        }
    }
    let frac = with_responsive as f64 / with_targets as f64;
    // ensure_responsive_prob = 0.90 plus organic responsiveness.
    assert!(
        frac > 0.85,
        "only {frac:.2} of no-DSAV ASes have a live handler"
    );
}

#[test]
fn acl_kinds_follow_the_open_closed_split() {
    let w = big_world();
    let responsive: Vec<_> = w.resolvers.iter().filter(|r| r.responsive).collect();
    for r in &responsive {
        if r.open {
            assert_eq!(r.acl, AclKind::Open, "{:?}", r.addr);
        } else {
            assert_ne!(r.acl, AclKind::Open, "{:?}", r.addr);
        }
    }
}

#[test]
fn stale_targets_have_no_hosts_and_live_ones_do() {
    let w = big_world();
    for r in w.resolvers.iter().take(2_000) {
        let routed = w.topo.routes().origin(r.addr);
        assert_eq!(routed, Some(r.asn), "target routing broken for {}", r.addr);
    }
    let stale = w.resolvers.iter().filter(|r| !r.live).count();
    let live = w.resolvers.iter().filter(|r| r.live).count();
    assert!(stale > 0 && live > 0);
    // Stale majority per the churn model (~55%).
    let frac = stale as f64 / (stale + live) as f64;
    assert!((0.40..0.75).contains(&frac), "stale fraction {frac}");
}

#[test]
fn geo_covers_every_measured_prefix() {
    let w = big_world();
    for &asn in w.measured_asns.iter().take(100) {
        assert!(
            w.geo.countries_of(asn).next().is_some(),
            "{asn} has no geo attribution"
        );
    }
    for r in w.resolvers.iter().take(500) {
        assert!(
            w.geo.country_of(r.addr).is_some(),
            "{} has no country",
            r.addr
        );
    }
}

#[test]
fn middleboxes_only_in_no_dsav_ases() {
    let w = big_world();
    for &asn in &w.measured_asns {
        if let Some(info) = w.topo.as_info(asn) {
            if info.dns_interceptor.is_some() {
                assert!(
                    !info.policy.dsav,
                    "{asn}: middlebox behind a DSAV border is unobservable"
                );
            }
        }
    }
}

#[test]
fn dsav_ases_filter_bogons_too() {
    // The SAV-hygiene coupling: a DSAV AS must also filter private and
    // loopback sources, or the reachability ⇒ no-DSAV implication breaks.
    let w = big_world();
    for &asn in &w.measured_asns {
        let p = w.topo.as_info(asn).unwrap().policy;
        if p.dsav {
            assert!(p.filter_private_ingress, "{asn}");
            assert!(p.filter_loopback_ingress, "{asn}");
            assert!(p.filter_loopback_ingress_v6, "{asn}");
            assert_eq!(p.internal_pass_permille, 0, "{asn}");
        }
    }
}
