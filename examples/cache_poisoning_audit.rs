//! Cache-poisoning exposure audit — the paper's §5.2 case study as a tool.
//!
//! Surveys a synthetic Internet, then reports every resolver whose source
//! ports make Kaminsky-style cache poisoning practical: fixed ports reduce
//! the attacker's search space from 2^32 to 2^16, and closed resolvers in
//! no-DSAV networks are attackable *despite* their ACLs, because spoofed
//! in-network sources can induce queries.
//!
//! ```sh
//! cargo run --release --example cache_poisoning_audit
//! ```

use behind_closed_doors::core::analysis::openclosed::OpenClosedReport;
use behind_closed_doors::core::analysis::ports::PortReport;
use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::{Experiment, ExperimentConfig};
use behind_closed_doors::stats::occupancy;

fn main() {
    let mut cfg = ExperimentConfig::tiny(7);
    cfg.world.n_as = 150;
    cfg.world.target_scale = 0.15;
    let data = Experiment::run(cfg);

    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);

    println!("== cache-poisoning exposure audit ==\n");
    println!(
        "{} direct resolvers measured; {} with ZERO source-port randomization\n",
        ports.observations.len(),
        ports.zero.count
    );

    for obs in ports.observations.iter().filter(|o| o.range == 0) {
        let status = if obs.open { "OPEN" } else { "closed" };
        let exposure = if obs.open {
            "attackable by anyone (no spoofing needed)"
        } else {
            "attackable via spoofed in-network sources (no DSAV)"
        };
        println!(
            "  {:<18} port {:<6} {:<7} — txid search space 2^16 — {}",
            obs.addr.to_string(),
            obs.ports[0],
            status,
            exposure
        );
    }

    // Suspiciously small pools: ports that repeat within 10 queries.
    println!("\nresolvers with suspicious port reuse (<=7 unique in 10 queries):");
    for obs in &ports.observations {
        let unique: std::collections::BTreeSet<u16> = obs.ports.iter().copied().collect();
        if unique.len() <= 7 && obs.range > 0 {
            let p = occupancy::at_most_unique(obs.range as u64 + 1, 10, unique.len() as u32);
            println!(
                "  {:<18} range {:<6} {} unique ports (probability under a uniform pool: {:.4}%)",
                obs.addr.to_string(),
                obs.range,
                unique.len(),
                100.0 * p
            );
        }
    }

    println!(
        "\n{} of {} affected ASes host at least one *closed* zero-range resolver —",
        ports.zero.asns_with_closed.len(),
        ports.zero.asns.len()
    );
    println!("for those networks, deploying DSAV would directly shrink the attack surface.");
}
