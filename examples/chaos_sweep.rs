//! The chaos sweep: fan `seeds × profiles` seeded fault schedules through
//! the full survey, gate every run on the invariant checker, and shrink
//! any violation to a minimal replayable reproducer.
//!
//! ```sh
//! # default sweep: 8 seeds × 4 profiles = 32 checked (seed, profile) runs
//! cargo run --release --example chaos_sweep
//! # custom fan-out over tiny worlds:
//! cargo run --release --example chaos_sweep -- [n_seeds] [profile ...]
//! cargo run --release --example chaos_sweep -- 4 drizzle hostile
//!
//! # replay one run from a printed replay line and print its log digest:
//! BCD_CHAOS=seed=123,profile=bursty cargo run --release --example chaos_sweep
//! ```
//!
//! Exits nonzero if any invariant was violated — the CI `chaos-smoke` job
//! gates on that. `BCD_SHARDS` picks the shard layout; every printed line
//! (and the exit code) is identical for any value, because fault fates are
//! pure functions of shard-invariant packet keys.
//!
//! When `BCD_CHAOS_ARTIFACTS=dir` is set, every violation's self-contained
//! dump (run report + minimal replay line + causal flight-recorder window)
//! is written to `dir/violation-<seed>-<profile>.txt` — what CI uploads.

use behind_closed_doors::core::chaos::{self, SWEEP_PROFILES};
use behind_closed_doors::core::ExperimentConfig;
use behind_closed_doors::netsim::ChaosSpec;

const SWEEP_SEEDS: [u64; 8] = [11, 23, 37, 41, 53, 67, 79, 97];

fn main() {
    // Replay mode: BCD_CHAOS carries a replay line from a previous sweep
    // (or a shrunk minimal reproducer, with its `events=` list).
    if let Ok(line) = std::env::var("BCD_CHAOS") {
        let spec: ChaosSpec = line
            .parse()
            .unwrap_or_else(|e| panic!("bad BCD_CHAOS line {line:?}: {e}"));
        let base = ExperimentConfig::tiny(SWEEP_SEEDS[0]);
        eprintln!(
            "replaying {spec} over a tiny world (seed {})...",
            SWEEP_SEEDS[0]
        );
        let clean = chaos::run_clean(&base);
        let data =
            chaos::replay(&base, &spec).unwrap_or_else(|| panic!("unknown profile in {line:?}"));
        let report =
            behind_closed_doors::core::invariants::InvariantChecker::check_full(&clean, &data);
        println!("log digest: {:016x}", chaos::entries_digest(&data));
        print!("{}", report.render());
        std::process::exit(if report.is_ok() { 0 } else { 1 });
    }

    let args: Vec<String> = std::env::args().collect();
    let n_seeds: usize = args
        .get(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(SWEEP_SEEDS.len())
        .clamp(1, SWEEP_SEEDS.len());
    let profiles: Vec<&str> = if args.len() > 2 {
        args[2..].iter().map(|s| s.as_str()).collect()
    } else {
        SWEEP_PROFILES.to_vec()
    };

    eprintln!(
        "chaos sweep: {n_seeds} seeds × {} profiles over tiny worlds...",
        profiles.len()
    );
    let t0 = std::time::Instant::now();
    let outcome = chaos::sweep(
        ExperimentConfig::tiny,
        &SWEEP_SEEDS[..n_seeds],
        &profiles,
        true,
    );
    eprintln!("swept in {:.1}s\n", t0.elapsed().as_secs_f64());

    print!("{}", outcome.render());
    println!();
    for run in &outcome.runs {
        println!("replay: BCD_CHAOS={}", run.spec);
    }
    if let Ok(dir) = std::env::var("BCD_CHAOS_ARTIFACTS") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create artifact dir");
        for run in &outcome.runs {
            if let Some(artifact) = &run.artifact {
                let path = dir.join(format!(
                    "violation-{}-{}.txt",
                    run.world_seed, run.spec.profile
                ));
                std::fs::write(&path, artifact).expect("write violation artifact");
                eprintln!("violation artifact: {}", path.display());
            }
        }
    }
    if outcome.total_violations() > 0 {
        eprintln!("\nINVARIANT VIOLATIONS: {}", outcome.total_violations());
        std::process::exit(1);
    }
}
