//! A configurable full DSAV survey — the paper's complete §4/§5 pipeline
//! with every report, like the `bcd-bench all` binary but as a library
//! walkthrough with knobs on the command line.
//!
//! ```sh
//! cargo run --release --example dsav_survey -- [seed] [n_as] [target_scale]
//! # e.g. a half-size world:
//! cargo run --release --example dsav_survey -- 7 300 0.2
//! ```

use behind_closed_doors::core::analysis::categories::CategoryReport;
use behind_closed_doors::core::analysis::country::CountryReport;
use behind_closed_doors::core::analysis::forwarding::ForwardingReport;
use behind_closed_doors::core::analysis::local::LocalInfiltrationReport;
use behind_closed_doors::core::analysis::openclosed::OpenClosedReport;
use behind_closed_doors::core::analysis::ports::PortReport;
use behind_closed_doors::core::analysis::qmin::QminReport;
use behind_closed_doors::core::analysis::reachability::{MiddleboxReport, Reachability};
use behind_closed_doors::core::{report, Experiment, ExperimentConfig};
use behind_closed_doors::obs;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let seed: u64 = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(2019);
    let n_as: usize = args.get(2).and_then(|a| a.parse().ok()).unwrap_or(300);
    let scale: f64 = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(0.2);

    let mut cfg = ExperimentConfig::paper_shape(seed);
    cfg.world.n_as = n_as;
    cfg.world.target_scale = scale;

    eprintln!("surveying a {n_as}-AS world (seed {seed}, scale {scale})...");
    let t0 = std::time::Instant::now();
    let mut data = Experiment::run(cfg);
    eprintln!(
        "done in {:.1}s — {} probes, {} auth-side queries, {} simulated events\n",
        t0.elapsed().as_secs_f64(),
        data.scanner_stats.spoofed_sent,
        data.entries.len(),
        data.events
    );

    let t_analysis = std::time::Instant::now();
    let input = data.input();
    let reach = Reachability::compute(&input);
    let countries = CountryReport::compute(&input, &reach);
    let cats = CategoryReport::compute(&reach);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);
    let fwd = ForwardingReport::compute(&input);
    let local = LocalInfiltrationReport::compute(&reach);
    let qmin = QminReport::compute(&input, &reach);
    let mbx = MiddleboxReport::compute(&input, &reach);

    println!("{}", report::render_headline(&data.targets, &reach));
    println!("{}", report::render_table1(&countries, 10));
    println!("{}", report::render_table3(&cats));
    println!("{}", report::render_table4(&ports));
    println!("{}", report::render_openclosed(&oc));
    println!("{}", report::render_forwarding(&fwd));
    println!("{}", report::render_local(&local));
    println!("{}", report::render_methodology(&reach, &qmin, &mbx));
    println!("{}", report::render_engine_totals(&data.counters));
    data.obs.profile.record("analysis", t_analysis.elapsed());

    // Run metadata (phase timings, per-shard breakdown) goes to stderr;
    // see EXPERIMENTS.md "Observability" for BCD_OBS / BCD_PROGRESS.
    eprintln!("{}", obs::report::render_run_report(&data.obs));
}
