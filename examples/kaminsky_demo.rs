//! Kaminsky-style cache poisoning, executed — the attack §5.2 warns about,
//! run against the same resolver implementation the survey measures.
//!
//! Two victims, identical except for source-port allocation:
//! * a resolver pinned to source port 53 (like the paper's 1,308
//!   port-53 resolvers), with the port learned from a §5.2 survey,
//! * a resolver drawing ports from the Linux 32768–61000 pool.
//!
//! Both are *closed* resolvers — only the lack of DSAV lets the attacker
//! induce queries at all, by spoofing an in-network client.
//!
//! ```sh
//! cargo run --release --example kaminsky_demo
//! ```

use behind_closed_doors::core::attack::{run_poisoning_attack, PoisonConfig};
use behind_closed_doors::osmodel::{Os, PortAllocator};

fn main() {
    let budget_rounds = 24;
    let guesses = 16_384;

    println!("== Kaminsky-style poisoning vs source-port randomization ==\n");
    println!("attack budget: {budget_rounds} induced queries x {guesses} forged responses each\n");

    println!("victim 1: closed resolver, fixed source port 53 (port known from survey)");
    let fixed = run_poisoning_attack(PoisonConfig {
        guesses_per_round: guesses,
        rounds: budget_rounds,
        known_port: Some(53),
        allocator: PortAllocator::fixed(53),
        seed: 2020,
    });
    println!(
        "  per-forgery acceptance probability: {:.2e} (txid only: 2^16 search space)",
        fixed.per_forgery_probability
    );
    match (fixed.poisoned_at_round, fixed.poisoned_name) {
        (Some(round), Some(name)) => println!(
            "  POISONED at round {round} ({} forged packets sent): {name} now resolves to the attacker\n",
            fixed.forged_sent
        ),
        _ => println!("  survived this run (try another seed — expected success ~22%/round)\n"),
    }

    println!("victim 2: identical resolver, Linux ephemeral pool (28,232 ports)");
    let random = run_poisoning_attack(PoisonConfig {
        guesses_per_round: guesses,
        rounds: budget_rounds,
        known_port: None,
        allocator: Os::LinuxModern.default_port_allocator(),
        seed: 2020,
    });
    println!(
        "  per-forgery acceptance probability: {:.2e} (txid x port: 2^16 x 28,232)",
        random.per_forgery_probability
    );
    match random.poisoned_at_round {
        Some(round) => println!("  poisoned at round {round} (!)"),
        None => println!(
            "  survived all {budget_rounds} rounds ({} forged packets) — as the arithmetic demands",
            random.forged_sent
        ),
    }

    println!(
        "\nthe same attack budget that cracks a fixed-port resolver in seconds would need\n\
         ~{:.0}x longer against the randomized one — §5.2's point, made executable.",
        fixed.per_forgery_probability / random.per_forgery_probability
    );
}
