//! The §6 "testing tool": assess individual networks from survey data,
//! the way the paper's planned public web interface would — verdict,
//! reached resolvers, port health, and ordered remediation advice.
//!
//! ```sh
//! cargo run --release --example network_selfcheck
//! ```

use behind_closed_doors::core::analysis::openclosed::OpenClosedReport;
use behind_closed_doors::core::analysis::ports::PortReport;
use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::{Experiment, ExperimentConfig, SelfCheck, Verdict};

fn main() {
    let mut cfg = ExperimentConfig::tiny(99);
    cfg.world.n_as = 120;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);

    // Pick one vulnerable and one apparently-filtered AS to showcase.
    let reached = reach.reached_asns_all();
    let vulnerable = reached
        .iter()
        .max_by_key(|asn| reach.reached.values().filter(|h| h.asn == **asn).count());
    let filtered = data
        .world
        .measured_asns
        .iter()
        .find(|a| !reached.contains(a));

    for asn in [vulnerable.copied(), filtered.copied()]
        .into_iter()
        .flatten()
    {
        let report = SelfCheck::assess(asn, &data.targets, &reach, &oc, &ports);
        println!("{report}");
        // Cross-check against the simulation's ground truth.
        let truth = data.world.truly_lacks_dsav(asn);
        if report.verdict == Verdict::Vulnerable {
            assert!(truth, "self-check false positive")
        }
        println!(
            "(ground truth: this AS {} DSAV)\n",
            if truth { "lacks" } else { "deploys" }
        );
    }
}
