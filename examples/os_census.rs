//! OS census of unreachable-by-design resolvers — the paper's §5.3 case
//! study: identify operating systems *behind closed doors* from just a few
//! strategically-formed queries, combining the port-range model with p0f.
//!
//! ```sh
//! cargo run --release --example os_census
//! ```

use behind_closed_doors::core::analysis::openclosed::OpenClosedReport;
use behind_closed_doors::core::analysis::ports::PortReport;
use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::{Experiment, ExperimentConfig};
use behind_closed_doors::osmodel::P0fClass;
use behind_closed_doors::stats::Beta;

fn main() {
    let mut cfg = ExperimentConfig::tiny(11);
    cfg.world.n_as = 200;
    let data = Experiment::run(cfg);

    let input = data.input();
    let reach = Reachability::compute(&input);
    let oc = OpenClosedReport::compute(&input, &reach);
    let ports = PortReport::compute(&input, &oc);

    println!("== OS identification census (port-range model + p0f) ==\n");
    let beta = Beta::range_model(10);
    println!(
        "model: range of 10 uniform draws / pool ~ Beta(9,2); mode at {:.1}% of pool\n",
        100.0 * beta.mode()
    );

    // Classify by the derived bands.
    let c = &ports.cutoffs;
    let mut by_os: std::collections::BTreeMap<&str, (usize, usize)> = Default::default();
    for obs in &ports.observations {
        let band = match obs.range {
            0 => "fixed port (antique/misconfigured)",
            r if r <= 200 => "sequential small pool",
            r if r >= c.windows_lo && r <= c.windows_hi => "Windows Server (Windows DNS)",
            r if r >= c.freebsd_lo && r <= c.freebsd_linux => "FreeBSD",
            r if r > c.freebsd_linux && r <= c.linux_full => "Linux",
            r if r > c.linux_full => "full range (version-ambiguous)",
            _ => "odd pool",
        };
        let e = by_os.entry(band).or_default();
        e.0 += 1;
        if obs.p0f != P0fClass::Unknown {
            e.1 += 1;
        }
    }
    println!(
        "{:<38} {:>7} {:>14}",
        "identification", "count", "p0f-confirmed"
    );
    for (band, (count, confirmed)) in &by_os {
        println!("{:<38} {:>7} {:>14}", band, count, confirmed);
    }

    // Cross-check inference against ground truth (simulation luxury).
    let mut win_correct = 0;
    let mut win_total = 0;
    for obs in &ports.observations {
        if obs.range >= c.windows_lo && obs.range <= c.windows_hi {
            win_total += 1;
            if let Some(meta) = data.world.meta_of(obs.addr) {
                if meta.os.is_windows() {
                    win_correct += 1;
                }
            }
        }
    }
    if win_total > 0 {
        println!(
            "\nground truth: {}/{} Windows-band identifications are truly Windows ({:.0}%)",
            win_correct,
            win_total,
            100.0 * win_correct as f64 / win_total as f64
        );
    }

    // The §5.3.2 caveat, demonstrated: BIND on Windows hides in the full
    // range band.
    let hidden_windows = ports
        .observations
        .iter()
        .filter(|o| o.range > c.linux_full)
        .filter(|o| {
            data.world
                .meta_of(o.addr)
                .map(|m| m.os.is_windows())
                .unwrap_or(false)
        })
        .count();
    println!(
        "Windows Servers hidden in the full-range band (BIND on Windows): {}",
        hidden_windows
    );
}
