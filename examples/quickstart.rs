//! Quickstart: run a small DSAV survey end-to-end and print the headline
//! findings.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use behind_closed_doors::core::analysis::openclosed::OpenClosedReport;
use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::{report, Experiment, ExperimentConfig};

fn main() {
    // A small world: ~100 ASes. Seeds make everything reproducible.
    let mut cfg = ExperimentConfig::tiny(42);
    cfg.world.n_as = 100;
    println!(
        "building a {}-AS synthetic Internet and scanning it...",
        cfg.world.n_as
    );

    let data = Experiment::run(cfg);
    println!(
        "sent {} spoofed probes to {} targets; authoritative servers logged {} queries\n",
        data.scanner_stats.spoofed_sent,
        data.targets.len(),
        data.entries.len()
    );

    let input = data.input();
    let reach = Reachability::compute(&input);
    print!("{}", report::render_headline(&data.targets, &reach));

    let oc = OpenClosedReport::compute(&input, &reach);
    print!("\n{}", report::render_openclosed(&oc));

    // Ground-truth validation — the luxury a simulation affords.
    let claimed = reach.reached_asns_all();
    let correct = claimed
        .iter()
        .filter(|&&a| data.world.truly_lacks_dsav(a))
        .count();
    println!(
        "\nground truth check: {}/{} ASes we classified as lacking DSAV truly lack it",
        correct,
        claimed.len()
    );
}
