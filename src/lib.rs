//! # behind-closed-doors
//!
//! A full reproduction of *Behind Closed Doors: A Network Tale of Spoofing,
//! Intrusion, and False DNS Security* (Deccio et al., IMC 2020) as a Rust
//! workspace: the paper's spoofed-source DSAV measurement methodology plus
//! every substrate it needs, running on a deterministic discrete-event
//! Internet simulator.
//!
//! This crate is the facade: it re-exports the workspace members under one
//! namespace for examples and downstream users.
//!
//! * [`netsim`] — the simulator (engine, packets, routing, border policies),
//! * [`dnswire`] — DNS wire format,
//! * [`dns`] — resolver / authoritative / middlebox node behaviours,
//! * [`osmodel`] — OS stack models, port allocators, p0f,
//! * [`geo`] — synthetic geolocation,
//! * [`stats`] — Beta/range statistics behind the OS identification,
//! * [`worldgen`] — the seeded synthetic Internet,
//! * [`core`] — the paper's methodology and analyses.
//!
//! Quickstart (see `examples/quickstart.rs`):
//!
//! ```
//! use behind_closed_doors::core::{Experiment, ExperimentConfig};
//! use behind_closed_doors::core::analysis::reachability::Reachability;
//!
//! let data = Experiment::run(ExperimentConfig::tiny(1));
//! let reach = Reachability::compute(&data.input());
//! assert!(!reach.reached.is_empty());
//! ```

pub use bcd_core as core;
pub use bcd_dns as dns;
pub use bcd_dnswire as dnswire;
pub use bcd_geo as geo;
pub use bcd_netsim as netsim;
pub use bcd_obs as obs;
pub use bcd_osmodel as osmodel;
pub use bcd_stats as stats;
pub use bcd_worldgen as worldgen;
