//! Seed-sweep soundness: every chaos profile must leave the survey's
//! invariants intact, every `(seed, profile)` schedule must replay
//! byte-identically — including across shard layouts — and a broken
//! invariant must be caught and shrunk to a minimal fault-event set.

use behind_closed_doors::core::chaos::{self, SWEEP_PROFILES};
use behind_closed_doors::core::invariants::InvariantChecker;
use behind_closed_doors::core::ExperimentConfig;
use behind_closed_doors::netsim::{ChaosProfile, ChaosSpec, DropReason};

fn tiny(seed: u64) -> ExperimentConfig {
    let mut cfg = ExperimentConfig::tiny(seed);
    cfg.shards = 1;
    cfg
}

#[test]
fn crash_restart_chaos_stays_sound() {
    let base = tiny(301);
    let clean = chaos::run_clean(&base);
    let run = chaos::run_checked(&base, chaos::chaos_config(301, "crashy").unwrap(), &clean);
    assert!(run.invariants.is_ok(), "{}", run.invariants.render());
    assert!(
        run.data.counters.dropped(DropReason::HostDown) > 0,
        "crash epochs never bit: no host-down drops"
    );
}

#[test]
fn reorder_and_duplication_chaos_stays_sound() {
    let base = tiny(302);
    let clean = chaos::run_clean(&base);
    let run = chaos::run_checked(&base, chaos::chaos_config(302, "jittery").unwrap(), &clean);
    assert!(run.invariants.is_ok(), "{}", run.invariants.render());
    assert!(
        run.data.counters.duplicated > clean.counters.duplicated,
        "duplication layer never bit"
    );
}

#[test]
fn link_flap_chaos_stays_sound() {
    let base = tiny(303);
    let clean = chaos::run_clean(&base);
    let run = chaos::run_checked(&base, chaos::chaos_config(303, "flaky").unwrap(), &clean);
    assert!(run.invariants.is_ok(), "{}", run.invariants.render());
    assert!(
        run.data.counters.dropped(DropReason::LinkFlap) > 0,
        "flap windows never bit: no link-flap drops"
    );
}

#[test]
fn every_sweep_profile_stays_sound_and_bites() {
    // The default sweep profiles must each perturb the run (chaos with no
    // observable effect tests nothing) without violating an invariant.
    let base = tiny(308);
    let clean = chaos::run_clean(&base);
    for profile in SWEEP_PROFILES {
        let run = chaos::run_checked(&base, chaos::chaos_config(308, profile).unwrap(), &clean);
        assert!(
            run.invariants.is_ok(),
            "profile {profile}: {}",
            run.invariants.render()
        );
        // Chaos with no observable effect tests nothing: either the query
        // log changed, or the fault layers left drop/duplication/injection
        // marks. (The spoofed-response adversary is *supposed* to leave
        // the query log untouched — its forgeries die at the (txid, port)
        // demux — so its mark is the injected-packet counter.)
        let chaos_marks = run.data.counters.dropped(DropReason::ChaosLoss)
            + run.data.counters.dropped(DropReason::LinkFlap)
            + run.data.counters.dropped(DropReason::HostDown)
            + run.data.counters.duplicated
            + run.data.counters.injected;
        assert!(
            chaos::entries_digest(&run.data) != chaos::entries_digest(&clean) || chaos_marks > 0,
            "profile {profile} had no observable effect"
        );
    }
}

#[test]
fn chaos_run_is_byte_identical_across_shard_layouts() {
    let mk = |shards: usize| {
        let mut cfg = ExperimentConfig::tiny(305);
        cfg.shards = shards;
        cfg
    };
    let clean = chaos::run_clean(&mk(1));
    let chaos_cfg = chaos::chaos_config(305, "lossy").unwrap();
    let one = chaos::run_checked(&mk(1), chaos_cfg.clone(), &clean);
    let four = chaos::run_checked(&mk(4), chaos_cfg, &clean);
    assert_eq!(
        chaos::entries_digest(&one.data),
        chaos::entries_digest(&four.data),
        "chaos query log differs between 1 and 4 shards"
    );
    assert_eq!(one.data.entries.len(), four.data.entries.len());
    assert_eq!(
        chaos::render_run_report(&clean, &one),
        chaos::render_run_report(&clean, &four),
        "chaos run report differs between 1 and 4 shards"
    );
    assert!(one.invariants.is_ok(), "{}", one.invariants.render());
}

#[test]
fn replay_line_round_trips_byte_identically() {
    let base = tiny(306);
    let clean = chaos::run_clean(&base);
    let run = chaos::run_checked(&base, chaos::chaos_config(306, "bursty").unwrap(), &clean);
    // Print the replay line, parse it back, replay it: same run.
    let line = format!("BCD_CHAOS={}", run.spec);
    let spec: ChaosSpec = line
        .strip_prefix("BCD_CHAOS=")
        .unwrap()
        .parse()
        .expect("replay line parses");
    let replayed = chaos::replay(&base, &spec).expect("profile resolves");
    assert_eq!(
        chaos::entries_digest(&run.data),
        chaos::entries_digest(&replayed),
        "replay from {line} diverged"
    );
}

#[test]
fn broken_invariant_is_caught_and_shrunk_to_minimal_reproducer() {
    // A deliberately-broken invariant — "chaos must not shrink the
    // reached-target count" — is false by design: loss removes evidence.
    // The harness must catch it and delta-debug the schedule down to a
    // handful of fault events.
    let mut base = tiny(307);
    base.world.n_as = 10;
    base.world.target_scale = 0.02;
    let clean = chaos::run_clean(&base);

    let profile = ChaosProfile {
        loss: 0.45,
        ..ChaosProfile::named("jittery").unwrap()
    };
    let chaos_cfg = behind_closed_doors::netsim::ChaosConfig::custom(
        chaos::chaos_seed(307, "broken"),
        "custom",
        profile,
    );
    let broken = |clean: &behind_closed_doors::core::ExperimentData,
                  data: &behind_closed_doors::core::ExperimentData| {
        let reached = |d: &behind_closed_doors::core::ExperimentData| {
            behind_closed_doors::core::analysis::reachability::Reachability::compute(&d.input())
                .reached
                .len()
        };
        reached(data) < reached(clean)
    };

    let data = chaos::run_chaotic(&base, chaos_cfg.clone());
    assert!(
        broken(&clean, &data),
        "heavy loss failed to shrink the reached set; broken invariant never trips"
    );
    // The *real* invariants still hold even under this hammering.
    let real = InvariantChecker::check_full(&clean, &data);
    assert!(real.is_ok(), "{}", real.render());

    let minimal = chaos::shrink_schedule(&base, &clean, &data, &broken);
    let events = minimal.events.clone().expect("shrunk spec pins events");
    assert!(
        events.len() <= 5,
        "minimal reproducer too large: {} events ({minimal})",
        events.len()
    );
    // The minimal schedule still reproduces the violation. (A custom
    // profile has no name to round-trip through the spec, so replay it by
    // restricting the original config; named-profile replay-from-line is
    // covered by `replay_line_round_trips_byte_identically`.)
    let mut min_cfg = chaos_cfg;
    min_cfg.only_events = Some(events);
    let replayed = chaos::run_chaotic(&base, min_cfg);
    assert!(
        broken(&clean, &replayed),
        "minimal reproducer does not reproduce"
    );
}
