//! Substitution validation: the synthesized DITL trace stands in for a real
//! root-server collection. This test runs resolver *warmup* traffic through
//! the actual simulated root servers, converts the root log into DITL
//! records via the same path a real collection would take, and checks that
//! the paper's target-extraction pipeline produces the same targets either
//! way.

use behind_closed_doors::core::targets::TargetSet;
use behind_closed_doors::dns::log::shared_log;
use behind_closed_doors::dns::{
    Acl, AuthServer, AuthServerConfig, RecursiveResolver, ResolverConfig, Zone, ZoneMode,
};
use behind_closed_doors::dnswire::{Name, RType};
use behind_closed_doors::netsim::{
    Asn, BorderPolicy, HostConfig, LinkProfile, Network, NetworkConfig, SimDuration, StackPolicy,
};
use behind_closed_doors::osmodel::Os;
use behind_closed_doors::worldgen::ditl;
use std::net::IpAddr;

#[test]
fn warmup_through_real_root_servers_yields_extractable_targets() {
    let mut net = Network::new(NetworkConfig {
        seed: 5,
        core_link: LinkProfile::ideal(),
        intra_link: LinkProfile::instant(),
        ..Default::default()
    });
    net.add_simple_as(Asn(1), BorderPolicy::strict()); // infrastructure
    net.add_simple_as(Asn(2), BorderPolicy::open()); // resolver AS
    net.announce("198.41.0.0/24".parse().unwrap(), Asn(1));
    net.announce("16.0.0.0/24".parse().unwrap(), Asn(2));
    net.announce("16.0.1.0/24".parse().unwrap(), Asn(2));

    let root_addr: IpAddr = "198.41.0.4".parse().unwrap();
    let root_log = shared_log();
    // A root zone with no delegations: every warmup query gets NXDOMAIN
    // straight from the root — and is logged, which is all DITL needs.
    net.add_host(
        HostConfig {
            addrs: vec![root_addr],
            asn: Asn(1),
            stack: StackPolicy::strict(),
        },
        Box::new(AuthServer::new(AuthServerConfig {
            zones: vec![Zone::new(Name::root(), ZoneMode::Static(vec![]))],
            log: root_log.clone(),
            log_queries: true,
        })),
    );

    // Three resolvers with warmup schedules (self-initiated background
    // queries — what populates a real DITL trace).
    let resolver_addrs: Vec<IpAddr> = vec![
        "16.0.0.53".parse().unwrap(),
        "16.0.0.54".parse().unwrap(),
        "16.0.1.53".parse().unwrap(),
    ];
    for (i, addr) in resolver_addrs.iter().enumerate() {
        let warmup = (0..3)
            .map(|k| {
                (
                    SimDuration::from_secs(1 + i as u64 * 10 + k * 25),
                    format!("w{k}.lookup{i}.example").parse::<Name>().unwrap(),
                    RType::A,
                )
            })
            .collect();
        let mut cfg = ResolverConfig::test_default(vec![*addr], vec![root_addr]);
        cfg.warmup = warmup;
        cfg.acl = Acl::Open;
        net.add_host(
            HostConfig {
                addrs: vec![*addr],
                asn: Asn(2),
                stack: Os::LinuxModern.stack_policy(),
            },
            Box::new(RecursiveResolver::new(cfg)),
        );
    }

    net.run();

    // Convert the root log exactly like a real collection would.
    let trace = ditl::from_query_log(root_log.borrow().entries());
    assert!(
        trace.len() >= resolver_addrs.len(),
        "every resolver should have hit the root at least once, got {} records",
        trace.len()
    );

    // The extraction pipeline finds exactly the three resolvers.
    let targets = TargetSet::extract(&trace, net.routes());
    let mut found: Vec<IpAddr> = targets.v4.iter().map(|t| t.addr).collect();
    found.sort();
    let mut expected = resolver_addrs.clone();
    expected.sort();
    assert_eq!(found, expected);
    assert!(targets.v4.iter().all(|t| t.asn == Asn(2)));
}
