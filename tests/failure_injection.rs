//! Failure injection: the methodology must stay *sound* (never claim a
//! protected AS reachable) and *useful* (still find most of the population)
//! under adverse conditions — packet loss, heavy human-intervention noise,
//! and QNAME-minimizing resolvers.

use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::{Experiment, ExperimentConfig};

#[test]
fn survey_is_sound_under_packet_loss() {
    let mut cfg = ExperimentConfig::tiny(201);
    cfg.world.link_loss = 0.05; // 5% loss on every inter-AS traversal
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);

    // Soundness holds regardless of loss.
    for asn in reach.reached_asns_all() {
        assert!(
            data.world.truly_lacks_dsav(asn),
            "{asn}: loss must never create false reachability"
        );
    }
    // And the survey still finds a solid share of the population: each
    // target gets many probes, so 5% loss costs little.
    assert!(
        reach.reached.len() > 20,
        "survey collapsed under 5% loss: {} reached",
        reach.reached.len()
    );
}

#[test]
fn loss_only_shrinks_results_never_grows_them() {
    let run = |loss: f64| {
        let mut cfg = ExperimentConfig::tiny(202);
        cfg.world.link_loss = loss;
        let data = Experiment::run(cfg);
        let reach = Reachability::compute(&data.input());
        (reach.reached.len(), reach.reached_asns_all().len())
    };
    let (addrs_clean, asns_clean) = run(0.0);
    let (addrs_lossy, asns_lossy) = run(0.30);
    assert!(addrs_lossy <= addrs_clean);
    assert!(asns_lossy <= asns_clean + 1, "{asns_lossy} vs {asns_clean}");
    // 30% loss must actually bite somewhere (follow-up completeness etc.).
    assert!(addrs_lossy < addrs_clean, "loss had no observable effect");
}

#[test]
fn qmin_heavy_world_still_detects_ases() {
    // Make a third of resolvers QNAME-minimizing with NXDOMAIN halting:
    // many individual targets become invisible, but AS-level detection
    // survives via the minimized queries themselves plus other resolvers
    // (§3.6.4's conclusion).
    let mut cfg = ExperimentConfig::tiny(203);
    cfg.world.qmin_fraction = 0.33;
    cfg.world.qmin_halts_fraction = 1.0;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    assert!(
        reach.qmin.partial_sources.len() > 3,
        "expected minimized queries, saw {}",
        reach.qmin.partial_sources.len()
    );
    assert!(
        !reach.reached_asns_all().is_empty(),
        "AS detection must survive qmin"
    );
    for asn in reach.reached_asns_all() {
        assert!(data.world.truly_lacks_dsav(asn));
    }
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes every subsystem under one namespace.
    use behind_closed_doors::{dns, dnswire, geo, netsim, osmodel, stats, worldgen};
    let _ = dnswire::Name::root();
    let _ = netsim::SimTime::ZERO;
    let _ = osmodel::Os::LinuxModern.stack_policy();
    let _ = stats::Beta::range_model(10);
    let _ = geo::Country("US").name();
    let _ = worldgen::WorldConfig::tiny(1);
    let _ = dns::log::shared_log();
}

#[test]
fn survey_trace_exports_as_valid_pcap() {
    use behind_closed_doors::core::{Experiment, ExperimentConfig};
    use behind_closed_doors::netsim::pcap;

    let mut cfg = ExperimentConfig::tiny(401);
    cfg.world.n_as = 10;
    cfg.world.target_scale = 0.02;
    cfg.world.trace_capacity = Some(50_000);
    let data = Experiment::run(cfg);
    let trace = data.trace.as_ref().expect("trace enabled");
    assert!(!trace.is_empty());

    let bytes = pcap::pcap_bytes(trace, true);
    // Magic + linktype are in place and records parse to exactly the
    // buffer's end.
    assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
    let mut off = 24;
    let mut records = 0;
    while off < bytes.len() {
        let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16 + incl;
        records += 1;
    }
    assert_eq!(off, bytes.len(), "trailing bytes in pcap");
    assert!(records > 10, "only {records} records captured");
}
