//! Failure injection: the methodology must stay *sound* (never claim a
//! protected AS reachable) and *useful* (still find most of the population)
//! under adverse conditions — packet loss, heavy human-intervention noise,
//! and QNAME-minimizing resolvers.

use behind_closed_doors::core::analysis::reachability::Reachability;
use behind_closed_doors::core::invariants::InvariantChecker;
use behind_closed_doors::core::{Experiment, ExperimentConfig};
use behind_closed_doors::netsim::DropReason;

#[test]
fn survey_is_sound_under_packet_loss() {
    let mut cfg = ExperimentConfig::tiny(201);
    cfg.world.link_loss = 0.05; // 5% loss on every inter-AS traversal
    let data = Experiment::run(cfg);

    // The `link_loss` knob is a thin alias over the seeded fault
    // schedule: the compiled schedule must exist and carry ambient loss.
    let faults = data
        .world
        .faults
        .as_ref()
        .expect("link_loss compiles a FaultSchedule");
    assert_eq!(faults.profile_name(), "link-loss");
    assert_eq!(faults.event_counts().get("ambient-loss"), Some(&1));

    // Soundness holds regardless of loss (intrinsic invariants: no false
    // DSAV reachability, packet conservation).
    let report = InvariantChecker::check(&data);
    assert!(report.is_ok(), "{}", report.render());

    // And the survey still finds a solid share of the population: each
    // target gets many probes, so 5% loss costs little.
    let reach = Reachability::compute(&data.input());
    assert!(
        reach.reached.len() > 20,
        "survey collapsed under 5% loss: {} reached",
        reach.reached.len()
    );
}

#[test]
fn loss_only_shrinks_results_never_grows_them() {
    let run = |loss: f64| {
        let mut cfg = ExperimentConfig::tiny(202);
        cfg.world.link_loss = loss;
        Experiment::run(cfg)
    };
    let count = |data: &behind_closed_doors::core::ExperimentData| {
        let reach = Reachability::compute(&data.input());
        (reach.reached.len(), reach.reached_asns_all().len())
    };
    let clean = run(0.0);
    let lossy = run(0.30);
    let (addrs_clean, asns_clean) = count(&clean);
    let (addrs_lossy, asns_lossy) = count(&lossy);
    // Loss fates are pure hash draws over shard-invariant packet keys, so
    // the lossy run's evidence is a strict subset of the clean run's: the
    // monotonicity bound is exact, no slack.
    assert!(addrs_lossy <= addrs_clean, "{addrs_lossy} vs {addrs_clean}");
    assert!(asns_lossy <= asns_clean, "{asns_lossy} vs {asns_clean}");
    // 30% loss must actually bite somewhere (follow-up completeness etc.),
    // and every lost packet is attributed to the chaos layer the alias
    // routes through — never the legacy link-loss reason.
    assert!(addrs_lossy < addrs_clean, "loss had no observable effect");
    assert!(
        lossy.counters.dropped(DropReason::ChaosLoss) > 0,
        "no drops attributed to chaos-loss"
    );
    assert_eq!(lossy.counters.dropped(DropReason::LinkLoss), 0);
    assert_eq!(clean.counters.dropped(DropReason::ChaosLoss), 0);

    // The baseline-relative invariants codify the same bound.
    let report = InvariantChecker::check_full(&clean, &lossy);
    assert!(report.is_ok(), "{}", report.render());
}

#[test]
fn qmin_heavy_world_still_detects_ases() {
    // Make a third of resolvers QNAME-minimizing with NXDOMAIN halting:
    // many individual targets become invisible, but AS-level detection
    // survives via the minimized queries themselves plus other resolvers
    // (§3.6.4's conclusion).
    let mut cfg = ExperimentConfig::tiny(203);
    cfg.world.qmin_fraction = 0.33;
    cfg.world.qmin_halts_fraction = 1.0;
    let data = Experiment::run(cfg);
    let input = data.input();
    let reach = Reachability::compute(&input);
    assert!(
        reach.qmin.partial_sources.len() > 3,
        "expected minimized queries, saw {}",
        reach.qmin.partial_sources.len()
    );
    assert!(
        !reach.reached_asns_all().is_empty(),
        "AS detection must survive qmin"
    );
    let report = InvariantChecker::check(&data);
    assert!(report.is_ok(), "{}", report.render());
}

#[test]
fn facade_reexports_are_usable() {
    // The root crate exposes every subsystem under one namespace.
    use behind_closed_doors::{dns, dnswire, geo, netsim, osmodel, stats, worldgen};
    let _ = dnswire::Name::root();
    let _ = netsim::SimTime::ZERO;
    let _ = osmodel::Os::LinuxModern.stack_policy();
    let _ = stats::Beta::range_model(10);
    let _ = geo::Country("US").name();
    let _ = worldgen::WorldConfig::tiny(1);
    let _ = dns::log::shared_log();
}

#[test]
fn survey_trace_exports_as_valid_pcap() {
    use behind_closed_doors::core::{Experiment, ExperimentConfig};
    use behind_closed_doors::netsim::pcap;

    let mut cfg = ExperimentConfig::tiny(401);
    cfg.world.n_as = 10;
    cfg.world.target_scale = 0.02;
    cfg.world.trace_capacity = Some(50_000);
    let data = Experiment::run(cfg);
    let trace = data.trace.as_ref().expect("trace enabled");
    assert!(!trace.is_empty());

    let bytes = pcap::pcap_bytes(trace, true);
    // Magic + linktype are in place and records parse to exactly the
    // buffer's end.
    assert_eq!(&bytes[0..4], &0xa1b2_c3d4u32.to_le_bytes());
    let mut off = 24;
    let mut records = 0;
    while off < bytes.len() {
        let incl = u32::from_le_bytes(bytes[off + 8..off + 12].try_into().unwrap()) as usize;
        off += 16 + incl;
        records += 1;
    }
    assert_eq!(off, bytes.len(), "trailing bytes in pcap");
    assert!(records > 10, "only {records} records captured");
}
