//! Offline vendored stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so the workspace points its
//! `criterion` dev-dependency here. It implements the subset the benches
//! use — `Criterion`, `benchmark_group` / `sample_size` / `bench_function` /
//! `finish`, `Bencher::iter`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — as a plain wall-clock timer: each benchmark
//! runs a short warm-up, then `sample_size` timed samples, and prints
//! min/median/mean per iteration.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    /// Mean per-iteration time of the final measurement, populated by
    /// [`Bencher::iter`].
    sample: Option<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure the closure. Runs a warm-up pass, then enough iterations per
    /// sample to be timeable, collecting `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: how many iterations fit in ~50 ms?
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let per_sample =
            (Duration::from_millis(50).as_nanos() / once.as_nanos()).clamp(1, 10_000) as usize;

        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            samples.push(t.elapsed() / per_sample as u32);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        self.sample = Some(median);
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// A named set of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            sample: None,
            sample_size: self.sample_size,
        };
        f(&mut b);
        match b.sample {
            Some(median) => println!(
                "{}/{}: median {} per iteration",
                self.name,
                id,
                fmt_duration(median)
            ),
            None => println!(
                "{}/{}: no measurement (iter was never called)",
                self.name, id
            ),
        }
        let _ = &self.criterion;
        self
    }

    /// End the group (upstream requires this; here it is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Start a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let sample_size = if self.sample_size == 0 {
            20
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            name: name.to_string(),
            criterion: self,
            sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.benchmark_group("bench").bench_function(id, f);
        self
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
