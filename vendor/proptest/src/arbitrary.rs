//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::marker::PhantomData;

/// Types with a canonical default strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}

arbitrary_via_gen!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f32, f64);

impl<const N: usize> Arbitrary for [u8; N] {
    fn arbitrary(rng: &mut TestRng) -> [u8; N] {
        rng.gen()
    }
}

impl Arbitrary for crate::sample::Index {
    fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
        crate::sample::Index::new(rng.gen())
    }
}

/// The default strategy for `T`.
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy producing arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
