//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;
use std::ops::{Range, RangeInclusive};

/// Length specification for [`vec`].
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.end > r.start, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for vectors of `element` values with a length drawn from
/// `size` (a fixed `usize` or a range).
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
