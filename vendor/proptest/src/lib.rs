//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace points its
//! `proptest` dev-dependency here. This implements the subset the test
//! suites use: the [`proptest!`] macro, [`Strategy`] with `prop_map` and
//! boxing, `any::<T>()`, ranges as strategies, tuple strategies,
//! [`strategy::Just`], [`prop_oneof!`], `collection::vec`, `sample::select`
//! and `sample::Index`, and the `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream: failing cases are **not shrunk** (the failing
//! input is printed as-is), and generation is driven by a per-test
//! deterministic ChaCha8 stream (seeded from the test name) rather than a
//! persisted failure file.

pub mod arbitrary;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror of upstream's `proptest::prop` re-exports
/// (`prop::sample::select`, `prop::collection::vec`, ...).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests.
///
/// Supports the upstream surface used in this workspace:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(256))]
///
///     /// Doc comment.
///     #[test]
///     fn my_prop(x in any::<u64>(), mut v in collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x == x);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat_param in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run(|__proptest_rng| {
                    $(
                        let $arg = $crate::strategy::Strategy::generate(&($strat), __proptest_rng);
                    )*
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fail the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fail the current case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {:?} == {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Fail the current case if both sides are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: {:?} != {:?}: {}",
            l,
            r,
            format!($($fmt)*)
        );
    }};
}

/// Discard the current case (counted separately from failures).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
