//! Sampling strategies (`select`, `Index`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng as _;

/// An index into a collection whose size is only known at use time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Index(u64);

impl Index {
    pub(crate) fn new(raw: u64) -> Index {
        Index(raw)
    }

    /// Map onto `0..size`.
    pub fn index(&self, size: usize) -> usize {
        assert!(size > 0, "Index::index on empty collection");
        (self.0 % size as u64) as usize
    }
}

/// See [`select`].
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// A strategy choosing uniformly from a fixed set of values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select over an empty set");
    Select { options }
}
