//! The [`Strategy`] trait and combinators.

use crate::test_runner::TestRng;
use rand::{Rng as _, SampleUniform};
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of one type.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// Uniform choice among boxed alternatives (the [`crate::prop_oneof!`]
/// backend).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

/// Uniform choice among several strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

impl<T: SampleUniform + Clone + PartialOrd> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T: SampleUniform + Clone + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))+) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
