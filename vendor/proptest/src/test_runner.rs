//! The case runner: configuration, RNG, and the pass/reject/fail protocol.

use rand_chacha::ChaCha8Rng;

/// The RNG driving generation.
pub type TestRng = ChaCha8Rng;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Why a case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered this input out.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

/// Runs the closure over `cases` generated inputs.
pub struct TestRunner {
    config: ProptestConfig,
    name: &'static str,
    rng: TestRng,
}

impl TestRunner {
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        // Deterministic per-test seed: FNV-1a over the test name, so
        // failures are reproducible run-to-run without a persistence file.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRunner {
            config,
            name,
            rng: <TestRng as rand::SeedableRng>::seed_from_u64(h),
        }
    }

    /// Drive the property. Panics (failing the surrounding `#[test]`) on the
    /// first failing case; panics if too many inputs are rejected.
    pub fn run(&mut self, mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>) {
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = (self.config.cases as u64).saturating_mul(16).max(1024);
        while passed < self.config.cases {
            match case(&mut self.rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{}`: too many rejected inputs ({rejected}) — \
                             prop_assume! filter is too strict",
                            self.name
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{}` failed after {passed} passing case(s): {msg} \
                         (offline vendored runner: no shrinking)",
                        self.name
                    );
                }
            }
        }
    }
}
