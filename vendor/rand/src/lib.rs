//! Offline vendored stand-in for the `rand` 0.8 API surface this workspace
//! uses. The build environment has no registry access, so the workspace
//! points its `rand` dependency at this crate. It implements the exact
//! subset the codebase exercises — `RngCore`/`SeedableRng`, the `Rng`
//! extension trait (`gen`, `gen_range`, `gen_bool`), `seq::SliceRandom`
//! shuffling, and `thread_rng` — with the standard splitmix64-based
//! `seed_from_u64` expansion so seeding behaves like upstream.

use std::ops::{Range, RangeInclusive};

/// Low-level uniform bit source.
pub trait RngCore {
    fn next_u32(&mut self) -> u32;
    fn next_u64(&mut self) -> u64;
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// splitmix64 — the seed-expansion mix used by upstream `seed_from_u64`.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic seeding.
pub trait SeedableRng: Sized {
    type Seed: Sized + Default + AsMut<[u8]>;

    fn from_seed(seed: Self::Seed) -> Self;

    /// Expand a `u64` into a full seed via splitmix64 (upstream-compatible
    /// construction: successive 32-bit words of successive outputs).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut src = state;
        for chunk in seed.as_mut().chunks_mut(4) {
            let word = (splitmix64(&mut src) & 0xFFFF_FFFF) as u32;
            for (b, v) in chunk.iter_mut().zip(word.to_le_bytes()) {
                *b = v;
            }
        }
        Self::from_seed(seed)
    }
}

/// Types producible uniformly at random by [`Rng::gen`].
pub trait FromRandom {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! from_random_uint {
    ($($t:ty => $m:ident),* $(,)?) => {$(
        impl FromRandom for $t {
            fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.$m() as $t
            }
        }
    )*};
}
from_random_uint!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64);
from_random_uint!(i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl FromRandom for u128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> u128 {
        let hi = rng.next_u64() as u128;
        let lo = rng.next_u64() as u128;
        (hi << 64) | lo
    }
}

impl FromRandom for i128 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> i128 {
        u128::from_random(rng) as i128
    }
}

impl FromRandom for bool {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

impl FromRandom for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (upstream `Standard`).
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for f32 {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<const N: usize> FromRandom for [u8; N] {
    fn from_random<R: RngCore + ?Sized>(rng: &mut R) -> [u8; N] {
        let mut out = [0u8; N];
        rng.fill_bytes(&mut out);
        out
    }
}

/// Types that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    // Modulo reduction; the bias is < span / 2^128, negligible for every
    // span this workspace draws.
    debug_assert!(span > 0);
    u128::from_random(rng) % span
}

macro_rules! sample_uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: $t, hi: $t, inclusive: bool) -> $t {
                // Offset into unsigned space so signed ranges work too.
                let lo_w = lo as i128;
                let hi_w = hi as i128;
                let span = (hi_w - lo_w) as u128 + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample from empty range");
                (lo_w + uniform_u128(rng, span) as i128) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for u128 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: u128,
        hi: u128,
        inclusive: bool,
    ) -> u128 {
        if inclusive && lo == 0 && hi == u128::MAX {
            return u128::from_random(rng);
        }
        let span = hi - lo + if inclusive { 1 } else { 0 };
        assert!(span > 0, "cannot sample from empty range");
        lo + uniform_u128(rng, span)
    }
}

impl SampleUniform for i128 {
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: i128,
        hi: i128,
        inclusive: bool,
    ) -> i128 {
        let span = hi.wrapping_sub(lo) as u128 + if inclusive { 1 } else { 0 };
        assert!(span > 0, "cannot sample from empty range");
        lo.wrapping_add(uniform_u128(rng, span) as i128)
    }
}

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        assert!(lo < hi || (_inclusive && lo <= hi), "empty float range");
        lo + (hi - lo) * f64::from_random(rng)
    }
}

impl SampleUniform for f32 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        assert!(lo < hi || (_inclusive && lo <= hi), "empty float range");
        lo + (hi - lo) * f32::from_random(rng)
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// High-level random-value methods, blanket-implemented for every bit
/// source.
pub trait Rng: RngCore {
    fn gen<T: FromRandom>(&mut self) -> T {
        T::from_random(self)
    }

    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    fn fill<T: AsMut<[u8]>>(&mut self, dest: &mut T) {
        self.fill_bytes(dest.as_mut());
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    //! Sequence helpers (`shuffle`, `choose`).

    use super::{Rng, SampleUniform};

    pub trait SliceRandom {
        type Item;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        /// Fisher–Yates, matching upstream's iteration order.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_uniform(rng, 0, i, true);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[usize::sample_uniform(rng, 0, self.len() - 1, true)])
            }
        }
    }
}

pub mod rngs {
    //! Concrete generators.

    use super::{splitmix64, RngCore, SeedableRng};

    /// A small fast non-cryptographic generator (xoshiro-free: iterated
    /// splitmix64, which passes the statistical needs of a test stand-in).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
        fn next_u64(&mut self) -> u64 {
            splitmix64(&mut self.state)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 8];
        fn from_seed(seed: [u8; 8]) -> SmallRng {
            SmallRng {
                state: u64::from_le_bytes(seed),
            }
        }
    }

    /// Stand-in for upstream's thread-local generator. Deterministic per
    /// process but distinct across calls.
    #[derive(Debug, Clone)]
    pub struct ThreadRng(pub(crate) SmallRng);

    impl RngCore for ThreadRng {
        fn next_u32(&mut self) -> u32 {
            self.0.next_u32()
        }
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            self.0.fill_bytes(dest)
        }
    }
}

/// A fresh generator with a process-unique seed.
pub fn thread_rng() -> rngs::ThreadRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED_0000_0000_0000);
    let mut state = COUNTER.fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed);
    let seed = splitmix64(&mut state);
    rngs::ThreadRng(rngs::SmallRng::from_seed(seed.to_le_bytes()))
}

/// One random value from the thread-local generator.
pub fn random<T: FromRandom>() -> T {
    T::from_random(&mut thread_rng())
}

pub mod prelude {
    pub use crate::seq::SliceRandom;
    pub use crate::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut s = self.0;
            splitmix64(&mut s)
        }
        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&word[..n]);
            }
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(1);
        for _ in 0..1000 {
            let v: u16 = rng.gen_range(200u16..60000);
            assert!((200..60000).contains(&v));
            let w: u8 = rng.gen_range(b'a'..=b'z');
            assert!(w.is_ascii_lowercase());
            let f: f64 = rng.gen_range(0.25..2.5);
            assert!((0.25..2.5).contains(&f));
            let u: u128 = rng.gen_range(2..100u128);
            assert!((2..100).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_permutation() {
        use seq::SliceRandom;
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn thread_rngs_differ() {
        let mut a = thread_rng();
        let mut b = thread_rng();
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
