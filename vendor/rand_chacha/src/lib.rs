//! Offline vendored `ChaCha8Rng`: a real 8-round ChaCha keystream generator
//! implementing this workspace's vendored `rand` traits. The build
//! environment has no registry access, so the workspace points its
//! `rand_chacha` dependency here.
//!
//! The generator is deterministic, `Clone`, and platform-independent —
//! exactly the properties the simulator's determinism guarantee rests on.
//! (The word stream is not guaranteed bit-identical to the upstream crate;
//! nothing in this repository depends on upstream's exact stream, only on
//! stability across runs and platforms.)

use rand::{RngCore, SeedableRng};

const BLOCK_WORDS: usize = 16;

#[inline(always)]
fn quarter_round(state: &mut [u32; BLOCK_WORDS], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// The ChaCha block function with 8 rounds (4 double-rounds).
fn chacha8_block(input: &[u32; BLOCK_WORDS]) -> [u32; BLOCK_WORDS] {
    let mut x = *input;
    for _ in 0..4 {
        // Column round.
        quarter_round(&mut x, 0, 4, 8, 12);
        quarter_round(&mut x, 1, 5, 9, 13);
        quarter_round(&mut x, 2, 6, 10, 14);
        quarter_round(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut x, 0, 5, 10, 15);
        quarter_round(&mut x, 1, 6, 11, 12);
        quarter_round(&mut x, 2, 7, 8, 13);
        quarter_round(&mut x, 3, 4, 9, 14);
    }
    for (out, inp) in x.iter_mut().zip(input.iter()) {
        *out = out.wrapping_add(*inp);
    }
    x
}

/// An 8-round ChaCha random number generator.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    /// Constants + key + block counter + nonce.
    state: [u32; BLOCK_WORDS],
    /// Current keystream block.
    buffer: [u32; BLOCK_WORDS],
    /// Next unread word in `buffer`; `BLOCK_WORDS` forces a refill.
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buffer = chacha8_block(&self.state);
        // 64-bit block counter in words 12–13.
        let (lo, carry) = self.state[12].overflowing_add(1);
        self.state[12] = lo;
        if carry {
            self.state[13] = self.state[13].wrapping_add(1);
        }
        self.index = 0;
    }

    #[inline]
    fn next_word(&mut self) -> u32 {
        if self.index >= BLOCK_WORDS {
            self.refill();
        }
        let w = self.buffer[self.index];
        self.index += 1;
        w
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut state = [0u32; BLOCK_WORDS];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            state[4 + i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        // Counter (12–13) and nonce (14–15) start at zero.
        ChaCha8Rng {
            state,
            buffer: [0; BLOCK_WORDS],
            index: BLOCK_WORDS,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        self.next_word()
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_word() as u64;
        let hi = self.next_word() as u64;
        (hi << 32) | lo
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let word = self.next_word().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&word[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_and_clonable() {
        let mut a = ChaCha8Rng::seed_from_u64(2019);
        let mut b = ChaCha8Rng::seed_from_u64(2019);
        let mut c = a.clone();
        let va: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_eq!(va, vc);
    }

    #[test]
    fn seeds_produce_distinct_streams() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn counter_crosses_block_boundaries() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        // Pull enough to force many refills; values must keep varying.
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            seen.insert(rng.next_u32());
        }
        assert!(seen.len() > 990);
    }

    #[test]
    fn uniformish_floats() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
